// End-to-end locking tests (Section 4.4, Figure 8): the lock/bind/invoke/
// unlock bracket, stay-vs-move grants over the wire, contention between
// concurrent activities, and lock-queue bouncing when the object migrates.
#include <gtest/gtest.h>

#include <optional>

#include "support/test_objects.hpp"

namespace mage::rts {
namespace {

using core::Cod;
using core::Grev;
using testing::make_logic_system;

struct LockIntFixture : ::testing::Test {
  std::unique_ptr<MageSystem> system = make_logic_system(3);
  common::NodeId n1{1}, n2{2}, n3{3};
};

TEST_F(LockIntFixture, StayLockWhenTargetIsCurrentHost) {
  system->client(n2).create_component("obj", "Counter", true);
  auto handle = system->client(n1).lock("obj", n2);
  EXPECT_EQ(handle.kind, LockKind::Stay);
  EXPECT_EQ(handle.host, n2);
  system->client(n1).unlock(handle);
}

TEST_F(LockIntFixture, MoveLockWhenTargetDiffers) {
  system->client(n2).create_component("obj", "Counter", true);
  auto handle = system->client(n1).lock("obj", n3);
  EXPECT_EQ(handle.kind, LockKind::Move);
  system->client(n1).unlock(handle);
}

TEST_F(LockIntFixture, UnlockWithoutLockFails) {
  system->client(n1).create_component("obj", "Counter", true);
  LockHandle bogus{"obj", n1, 999, LockKind::Stay};
  EXPECT_THROW(system->client(n1).unlock(bogus), common::LockError);
}

TEST_F(LockIntFixture, PaperBracketLockBindInvokeUnlock) {
  // The oil-exploration fragment:
  //   lock("geoData", cod.getTarget());
  //   i = (GeoDataFilter) cod.bind();
  //   x = i.f(a);
  //   unlock("geoData");
  system->client(n2).create_component("geoData", "Counter", true);
  auto& client = system->client(n1);
  Cod cod(client, "geoData");
  auto lock = client.lock("geoData", cod.target());
  EXPECT_EQ(lock.kind, LockKind::Move);  // target n1, object at n2
  auto i = cod.bind();
  EXPECT_EQ(i.invoke<std::int64_t>("increment"), 1);
  client.unlock(lock);
  EXPECT_TRUE(client.has_local("geoData"));
}

TEST_F(LockIntFixture, ContendingActivitiesSerialize) {
  // Two activities lock the same object; the second blocks (in simulated
  // time) until the first unlocks.
  system->client(n3).create_component("obj", "Counter", true);
  auto& c1 = system->client(n1);
  auto& c2 = system->client(n2);

  std::optional<proto::LockReply> r1, r2;
  c1.lock_async(n3, "obj", n3, [&r1](proto::LockReply r) { r1 = r; });
  system->simulation().run_until([&r1] { return r1.has_value(); });
  ASSERT_EQ(r1->status, proto::Status::Ok);

  c2.lock_async(n3, "obj", n3, [&r2](proto::LockReply r) { r2 = r; });
  system->simulation().run_for(common::msec(500));
  EXPECT_FALSE(r2.has_value()) << "second lock granted while first held";

  bool unlocked = false;
  c1.unlock_async(n3, "obj", r1->lock_id, [&unlocked] { unlocked = true; });
  system->simulation().run_until([&r2] { return r2.has_value(); });
  EXPECT_EQ(r2->status, proto::Status::Ok);
}

TEST_F(LockIntFixture, UnfairStayPreferenceOverTheWire) {
  // Holder + queued [move from c1, stay from c2]: when the holder
  // releases, the stay lock wins although the move lock queued first.
  system->client(n3).create_component("obj", "Counter", true);
  auto& holder = system->client(n3);
  auto held = holder.lock("obj", n3);

  std::optional<proto::LockReply> move_reply, stay_reply;
  system->client(n1).lock_async(n3, "obj", n1, [&](proto::LockReply r) {
    move_reply = r;
  });
  system->simulation().run_for(common::msec(10));
  system->client(n2).lock_async(n3, "obj", n3, [&](proto::LockReply r) {
    stay_reply = r;
  });
  system->simulation().run_for(common::msec(10));

  holder.unlock(held);
  system->simulation().run_until(
      [&stay_reply] { return stay_reply.has_value(); });
  EXPECT_EQ(stay_reply->kind, LockKind::Stay);
  EXPECT_FALSE(move_reply.has_value()) << "move lock jumped the stay lock";

  // Drain: release the stay lock, the move lock follows.
  system->client(n2).unlock_async(n3, "obj", stay_reply->lock_id, [] {});
  system->simulation().run_until(
      [&move_reply] { return move_reply.has_value(); });
  EXPECT_EQ(move_reply->kind, LockKind::Move);
}

TEST_F(LockIntFixture, QueuedLockBouncesWhenObjectMigrates) {
  system->client(n2).create_component("obj", "Counter", true);
  // Activity A takes a move lock intending to move the object to n3.
  auto& mover = system->client(n1);
  auto lock = mover.lock("obj", n3);
  EXPECT_EQ(lock.kind, LockKind::Move);

  // Activity B queues behind it.
  std::optional<proto::LockReply> queued;
  system->client(n3).lock_async(n2, "obj", n2, [&](proto::LockReply r) {
    queued = r;
  });
  system->simulation().run_for(common::msec(20));
  EXPECT_FALSE(queued.has_value());

  // A moves the object, then unlocks at the old host.  B's queued request
  // is bounced with the new location.
  Grev grev(mover, "obj", n3);
  (void)grev.bind();
  system->simulation().run_until([&queued] { return queued.has_value(); });
  EXPECT_EQ(queued->status, proto::Status::Moved);
  EXPECT_EQ(queued->hint, n3);
  mover.unlock(lock);  // release at the old host still works

  // B retries at the hinted host and succeeds.
  auto handle = system->client(n3).lock("obj", n3);
  EXPECT_EQ(handle.kind, LockKind::Stay);
}

TEST_F(LockIntFixture, LockChasesMovedObject) {
  system->client(n2).create_component("obj", "Counter", true);
  system->client(n3).move("obj", n3);
  // n1 believes the object is at its home (n2); the lock request chases.
  auto handle = system->client(n1).lock("obj", n3);
  EXPECT_EQ(handle.kind, LockKind::Stay);
  EXPECT_EQ(handle.host, n3);
}

TEST_F(LockIntFixture, StayAndMoveCountsReachStats) {
  system->client(n2).create_component("obj", "Counter", true);
  auto h1 = system->client(n1).lock("obj", n2);
  system->client(n1).unlock(h1);
  auto h2 = system->client(n1).lock("obj", n1);
  system->client(n1).unlock(h2);
  EXPECT_EQ(system->stats().counter("rts.locks_stay"), 1);
  EXPECT_EQ(system->stats().counter("rts.locks_move"), 1);
}

// Interleaved moves serialized by the lock bracket: the invariant the
// paper's Figure 8 protects — no lost updates, exactly one live copy.
TEST_F(LockIntFixture, LockBracketSerializesCompetingMoves) {
  system->client(n1).create_component("obj", "Counter", true);

  for (int round = 0; round < 6; ++round) {
    auto& client = system->client(round % 2 == 0 ? n2 : n3);
    const auto target = client.self();
    auto lock = client.lock("obj", target);
    Grev grev(client, "obj", target);
    auto h = grev.bind();
    (void)h.invoke<std::int64_t>("increment");
    client.unlock(lock);
  }

  // Exactly one live copy, with all six increments applied.
  int copies = 0;
  common::NodeId at = common::kNoNode;
  for (auto node : system->nodes()) {
    if (system->server(node).registry().has_local("obj")) {
      ++copies;
      at = node;
    }
  }
  EXPECT_EQ(copies, 1);
  common::NodeId cloc = at;
  EXPECT_EQ(system->client(n1).invoke<std::int64_t>(cloc, "obj", "get"), 6);
}

}  // namespace
}  // namespace mage::rts
