// Unit tests for the stay/move lock manager (Section 4.4).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "rts/lock_manager.hpp"

namespace mage::rts {
namespace {

constexpr common::NodeId kSelf{1};
constexpr common::NodeId kOther{2};
constexpr common::NodeId kThird{3};

struct LockFixture : ::testing::Test {
  LockManager locks{kSelf};

  // Requests a lock, recording the grant into `slot`.
  void request(const std::string& name, std::uint64_t activity,
               common::NodeId target, std::optional<LockGrant>& slot,
               std::optional<common::NodeId>* bounced = nullptr) {
    locks.request(
        name, common::ActivityId{activity}, target,
        [&slot](LockGrant grant) { slot = grant; },
        [bounced](common::NodeId host) {
          if (bounced != nullptr) *bounced = host;
        });
  }
};

TEST_F(LockFixture, FreeLockGrantsImmediately) {
  std::optional<LockGrant> grant;
  request("obj", 1, kSelf, grant);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->kind, LockKind::Stay);
  EXPECT_TRUE(locks.is_locked("obj"));
}

TEST_F(LockFixture, TargetElsewhereGetsMoveLock) {
  std::optional<LockGrant> grant;
  request("obj", 1, kOther, grant);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->kind, LockKind::Move);
}

TEST_F(LockFixture, SecondRequestQueues) {
  std::optional<LockGrant> g1, g2;
  request("obj", 1, kSelf, g1);
  request("obj", 2, kSelf, g2);
  EXPECT_TRUE(g1.has_value());
  EXPECT_FALSE(g2.has_value());
  EXPECT_EQ(locks.queue_length("obj"), 1u);
}

TEST_F(LockFixture, ReleaseGrantsNext) {
  std::optional<LockGrant> g1, g2;
  request("obj", 1, kSelf, g1);
  request("obj", 2, kSelf, g2);
  EXPECT_TRUE(locks.release("obj", g1->id));
  ASSERT_TRUE(g2.has_value());
  EXPECT_TRUE(locks.is_locked("obj"));
  EXPECT_TRUE(locks.release("obj", g2->id));
  EXPECT_FALSE(locks.is_locked("obj"));
}

TEST_F(LockFixture, ReleaseWrongIdFails) {
  std::optional<LockGrant> g1;
  request("obj", 1, kSelf, g1);
  EXPECT_FALSE(locks.release("obj", common::LockId{9999}));
  EXPECT_FALSE(locks.release("nothing", common::LockId{1}));
  EXPECT_TRUE(locks.is_locked("obj"));
}

TEST_F(LockFixture, UnfairPolicyPrefersStayLocks) {
  // Holder + queued: [move(A), move(B), stay(C)].  On release, the paper's
  // unfair policy grants C first even though A queued earlier.
  std::optional<LockGrant> holder, move_a, move_b, stay_c;
  request("obj", 1, kSelf, holder);
  request("obj", 2, kOther, move_a);
  request("obj", 3, kThird, move_b);
  request("obj", 4, kSelf, stay_c);

  EXPECT_TRUE(locks.release("obj", holder->id));
  EXPECT_TRUE(stay_c.has_value());
  EXPECT_FALSE(move_a.has_value());
  EXPECT_FALSE(move_b.has_value());

  // After the stay holder releases, moves drain in FIFO order.
  EXPECT_TRUE(locks.release("obj", stay_c->id));
  EXPECT_TRUE(move_a.has_value());
  EXPECT_FALSE(move_b.has_value());
}

TEST_F(LockFixture, FairPolicyIsFifo) {
  locks.set_fair(true);
  std::optional<LockGrant> holder, move_a, stay_b;
  request("obj", 1, kSelf, holder);
  request("obj", 2, kOther, move_a);
  request("obj", 3, kSelf, stay_b);
  EXPECT_TRUE(locks.release("obj", holder->id));
  EXPECT_TRUE(move_a.has_value());   // FIFO: the move queued first wins
  EXPECT_FALSE(stay_b.has_value());
}

TEST_F(LockFixture, GrantCountsByKind) {
  std::optional<LockGrant> g1, g2;
  request("obj", 1, kSelf, g1);
  locks.release("obj", g1->id);
  request("obj", 2, kOther, g2);
  EXPECT_EQ(locks.stay_grants(), 1u);
  EXPECT_EQ(locks.move_grants(), 1u);
}

TEST_F(LockFixture, DepartureBouncesQueuedRequests) {
  std::optional<LockGrant> holder, queued;
  std::optional<common::NodeId> bounced;
  request("obj", 1, kOther, holder);  // mover holds the lock
  request("obj", 2, kSelf, queued, &bounced);
  locks.on_object_departed("obj", kOther);
  EXPECT_FALSE(queued.has_value());
  ASSERT_TRUE(bounced.has_value());
  EXPECT_EQ(*bounced, kOther);
  // The holder keeps its grant and can still release here.
  EXPECT_TRUE(locks.release("obj", holder->id));
}

TEST_F(LockFixture, DepartureOfUnknownObjectIsNoop) {
  EXPECT_NO_THROW(locks.on_object_departed("ghost", kOther));
}

TEST_F(LockFixture, IndependentObjectsDoNotInterfere) {
  std::optional<LockGrant> g1, g2;
  request("a", 1, kSelf, g1);
  request("b", 2, kSelf, g2);
  EXPECT_TRUE(g1.has_value());
  EXPECT_TRUE(g2.has_value());
}

TEST_F(LockFixture, QueueLengthTracksPending) {
  std::optional<LockGrant> g1, g2, g3;
  request("obj", 1, kSelf, g1);
  request("obj", 2, kSelf, g2);
  request("obj", 3, kSelf, g3);
  EXPECT_EQ(locks.queue_length("obj"), 2u);
  locks.release("obj", g1->id);
  EXPECT_EQ(locks.queue_length("obj"), 1u);
  EXPECT_EQ(locks.queue_length("unknown"), 0u);
}

// Parameterized sweep: with K queued stay locks and K queued move locks
// under the unfair policy, all stay locks are granted before any move lock.
class UnfairSweep : public ::testing::TestWithParam<int> {};

TEST_P(UnfairSweep, AllStaysBeforeAllMoves) {
  const int k = GetParam();
  LockManager locks(kSelf);
  std::optional<LockGrant> holder;
  locks.request(
      "obj", common::ActivityId{0}, kSelf,
      [&holder](LockGrant g) { holder = g; }, nullptr);

  std::vector<int> grant_order;
  int seq = 0;
  std::vector<std::optional<LockGrant>> grants(2 * k);
  for (int i = 0; i < 2 * k; ++i) {
    // Even indices request moves, odd request stays.
    const auto target = (i % 2 == 0) ? kOther : kSelf;
    locks.request(
        "obj", common::ActivityId{static_cast<std::uint64_t>(i + 1)}, target,
        [&grants, &grant_order, &seq, i](LockGrant g) {
          grants[i] = g;
          grant_order.push_back(i);
          ++seq;
        },
        nullptr);
  }

  // Drain: release whoever currently holds.
  auto release_current = [&](common::LockId id) {
    ASSERT_TRUE(locks.release("obj", id));
  };
  release_current(holder->id);
  for (int step = 0; step < 2 * k; ++step) {
    const int granted = grant_order.back();
    release_current(grants[granted]->id);
  }

  // First k grants must all be stays (odd indices).
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ(grant_order[i] % 2, 1) << "grant " << i << " was a move lock";
  }
  for (int i = k; i < 2 * k; ++i) {
    EXPECT_EQ(grant_order[i] % 2, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(QueueDepths, UnfairSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace mage::rts
