// CompositeAttribute tests: the §3.6 CombinedMA pattern as a library type.
#include <gtest/gtest.h>

#include "core/composite.hpp"
#include "support/test_objects.hpp"

namespace mage::core {
namespace {

using testing::make_logic_system;

struct CompositeFixture : ::testing::Test {
  std::unique_ptr<rts::MageSystem> system = make_logic_system(4);
  common::NodeId n1{1}, n2{2}, n3{3}, n4{4};
};

TEST_F(CompositeFixture, SelectorPicksChildPerBind) {
  auto& client = system->client(n1);
  client.create_component("obj", "Counter");

  Grev to2(client, "obj", n2);
  Grev to3(client, "obj", n3);
  Cod home(client, "obj");

  CompositeAttribute combined(
      client, "obj", [&](std::size_t n) -> MobilityAttribute& {
        if (n == 0) return to2;
        if (n == 1) return to3;
        return home;
      });

  EXPECT_EQ(combined.bind().location(), n2);
  EXPECT_EQ(combined.bind().location(), n3);
  EXPECT_EQ(combined.bind().location(), n1);  // COD pulls it home
  EXPECT_EQ(combined.bind_count(), 3u);
}

TEST_F(CompositeFixture, ModelReflectsNextChild) {
  auto& client = system->client(n1);
  client.create_component("obj", "Counter");
  Grev grev(client, "obj", n2);
  Cod cod(client, "obj");
  CompositeAttribute combined(
      client, "obj", [&](std::size_t n) -> MobilityAttribute& {
        return n == 0 ? static_cast<MobilityAttribute&>(grev)
                      : static_cast<MobilityAttribute&>(cod);
      });
  EXPECT_EQ(combined.model(), Model::Grev);
  (void)combined.bind();
  EXPECT_EQ(combined.model(), Model::Cod);
}

TEST_F(CompositeFixture, StatePersistsAcrossChildSwitches) {
  auto& client = system->client(n1);
  client.create_component("obj", "Counter");
  Grev away(client, "obj", n4);
  Cod back(client, "obj");
  CompositeAttribute combined(
      client, "obj", [&](std::size_t n) -> MobilityAttribute& {
        return n % 2 == 0 ? static_cast<MobilityAttribute&>(away)
                          : static_cast<MobilityAttribute&>(back);
      });
  std::int64_t value = 0;
  for (int i = 0; i < 6; ++i) {
    auto handle = combined.bind();
    value = handle.invoke<std::int64_t>("increment");
  }
  EXPECT_EQ(value, 6);  // one object the whole way through
}

TEST_F(CompositeFixture, CompositeRebindsChildToItsComponent) {
  auto& client = system->client(n1);
  client.create_component("a", "Counter");
  client.create_component("b", "Counter");
  // The child attribute was created for "a", but the composite governs "b":
  // bind(name) must rebind the child.
  Grev child(client, "a", n2);
  CompositeAttribute combined(
      client, "b",
      [&](std::size_t) -> MobilityAttribute& { return child; });
  auto handle = combined.bind();
  EXPECT_EQ(handle.name(), "b");
  EXPECT_TRUE(system->server(n2).registry().has_local("b"));
  EXPECT_TRUE(client.has_local("a"));  // "a" untouched
}

}  // namespace
}  // namespace mage::core
