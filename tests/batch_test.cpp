// Property-test layer for batched & pipelined invokes (ROADMAP item 1):
//
//   (1) framing   — randomized batch round-trips (fuzzed kinds, fragment
//       shapes, error strings) are byte-exact; the empty batch and the
//       single-invoke degenerate case behave; malformed frames are
//       rejected; encode_batch is exactly ONE heap allocation.
//   (2) transport — a window of invokes toward one link rides one batch
//       frame (one net::Message, one wire_seq), their replies ride one
//       frame back, and a lone invoke in a quantum collapses to the plain
//       envelope so the single-fragment fast path still applies
//       (asserted via Envelope::fast_path_headers).
//   (3) one-way   — call_oneway executes with an unarmed Replier, touches
//       neither the pending table (no retransmissions ever) nor the reply
//       cache, and is at-most-once by construction.
//   (4) adaptive  — the at-most-once ring doubles under eviction pressure
//       (instantly on an observed eviction-caused re-execution), halves
//       back to the floor when idle, and at small-storm scale keeps
//       evictions to the handful spent discovering each capacity step.
//   (5) chaos     — batched + one-way traffic replayed through the PR 5
//       fault harness: per-node digests bit-identical at 1/2/8 workers
//       across 3 seeds, every echo exactly-once, every one-way note
//       at-most-once, zero wire-FIFO violations — and dropped batch
//       frames re-execute with zero duplicate side effects.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/verb.hpp"
#include "net/cost_model.hpp"
#include "net/network.hpp"
#include "rmi/envelope.hpp"
#include "rmi/transport.hpp"
#include "serial/buffer.hpp"
#include "serial/chain.hpp"
#include "serial/writer.hpp"
#include "sim/simulation.hpp"
#include "support/chaos_harness.hpp"

// Replaces global operator new/delete for this binary (one TU only) so the
// single-allocation-per-flush budget is asserted, not assumed.
#include "common/alloc_counter.hpp"

namespace mage {
namespace {

using rmi::Envelope;
using rmi::EnvelopeKind;

// --- (1) framing ------------------------------------------------------------

serial::Buffer random_fragment(common::Rng& rng, std::size_t max_bytes) {
  const std::size_t size = rng.next_below(max_bytes + 1);
  serial::Writer w(size);
  for (std::size_t i = 0; i < size; ++i) {
    w.write_u8(static_cast<std::uint8_t>(rng.next_below(256)));
  }
  return w.take();
}

Envelope random_envelope(common::Rng& rng) {
  Envelope e;
  switch (rng.next_below(3)) {
    case 0: e.kind = EnvelopeKind::Request; break;
    case 1: e.kind = EnvelopeKind::Reply; break;
    default: e.kind = EnvelopeKind::OneWay; break;
  }
  e.request_id = common::RequestId{rng.next()};
  e.verb = common::VerbId{static_cast<std::uint32_t>(rng.next_below(1 << 20))};
  if (e.kind == EnvelopeKind::Reply) {
    e.ok = rng.next_bool(0.7);
    if (!e.ok) {
      std::string error;
      const std::size_t len = rng.next_below(40);
      for (std::size_t i = 0; i < len; ++i) {
        error.push_back(static_cast<char>('a' + rng.next_below(26)));
      }
      e.error = std::move(error);
    }
  }
  // 0..kMaxFragments fragments, including empty ones: the framing header
  // must declare them all exactly.
  const std::size_t fragments =
      rng.next_below(serial::BufferChain::kMaxFragments + 1);
  for (std::size_t i = 0; i < fragments; ++i) {
    e.body.append(random_fragment(rng, 300));
  }
  return e;
}

void expect_envelopes_equal(const Envelope& a, const Envelope& b,
                            std::size_t index) {
  SCOPED_TRACE("envelope " + std::to_string(index));
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.request_id.value(), b.request_id.value());
  EXPECT_EQ(a.verb.value(), b.verb.value());
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.body.size(), b.body.size());
  EXPECT_TRUE(a.body == b.body.flatten());
}

TEST(BatchFraming, RandomizedBatchesRoundTripByteExactly) {
  common::Rng rng(0xBA7C4);
  for (int iter = 0; iter < 200; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    std::vector<Envelope> in;
    const std::size_t count = rng.next_below(13);
    in.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      in.push_back(random_envelope(rng));
    }

    const serial::Buffer wire = Envelope::encode_batch(in);
    ASSERT_GE(wire.size(), 5u);  // tag + count, always present
    // The tag byte is exactly kBatchTag: the fast-path flag is never set
    // on a batch frame.
    EXPECT_EQ(wire[0], rmi::kBatchTag);
    EXPECT_TRUE(Envelope::is_batch(wire));

    const std::vector<Envelope> out = Envelope::decode_batch(wire);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < count; ++i) {
      expect_envelopes_equal(in[i], out[i], i);
    }
    // Re-encoding the decoded envelopes reproduces the wire bytes —
    // decode loses nothing the encoder cares about.
    const serial::Buffer again = Envelope::encode_batch(out);
    ASSERT_EQ(again.size(), wire.size());
    EXPECT_TRUE(std::equal(wire.begin(), wire.end(), again.begin()));
  }
}

TEST(BatchFraming, EmptyBatchIsFiveBytesAndRoundTrips) {
  const serial::Buffer wire = Envelope::encode_batch({});
  EXPECT_EQ(wire.size(), 5u);  // u8 tag + u32 count(0)
  EXPECT_TRUE(Envelope::is_batch(wire));
  EXPECT_TRUE(Envelope::decode_batch(wire).empty());
}

TEST(BatchFraming, SingleEnvelopeBatchRoundTrips) {
  common::Rng rng(0x51461E);
  for (int iter = 0; iter < 32; ++iter) {
    std::vector<Envelope> in;
    in.push_back(random_envelope(rng));
    const std::vector<Envelope> out =
        Envelope::decode_batch(Envelope::encode_batch(in));
    ASSERT_EQ(out.size(), 1u);
    expect_envelopes_equal(in[0], out[0], 0);
  }
}

TEST(BatchFraming, RejectsMalformedFrames) {
  // A batch frame where a single envelope is expected.
  const serial::Buffer batch = Envelope::encode_batch({});
  EXPECT_THROW((void)Envelope::decode(batch), common::SerializationError);
  // A single envelope where a batch is expected.
  Envelope plain;
  plain.verb = common::VerbId{7};
  EXPECT_THROW((void)Envelope::decode_batch(plain.encode()),
               common::SerializationError);

  // A sub-envelope size running past the end of the frame.
  {
    serial::Writer w(16);
    w.write_u8(rmi::kBatchTag);
    w.write_u32(1);
    w.write_u32(1000);  // declares far more bytes than follow
    w.write_u8(0);
    EXPECT_THROW((void)Envelope::decode_batch(w.take()),
                 common::SerializationError);
  }
  // Trailing bytes after the declared sub-envelopes.
  {
    Envelope e;
    e.verb = common::VerbId{9};
    std::vector<Envelope> one;
    one.push_back(std::move(e));
    const serial::Buffer good = Envelope::encode_batch(one);
    serial::Writer w(good.size() + 1);
    w.write_raw(good.data(), good.size());
    w.write_u8(0xEE);
    EXPECT_THROW((void)Envelope::decode_batch(w.take()),
                 common::SerializationError);
  }
  // A nested batch: a sub-envelope whose own tag is the batch tag.
  {
    const serial::Buffer inner = Envelope::encode_batch({});
    serial::Writer w(1 + 4 + 4 + inner.size());
    w.write_u8(rmi::kBatchTag);
    w.write_u32(1);
    w.write_u32(static_cast<std::uint32_t>(inner.size()));
    w.write_raw(inner.data(), inner.size());
    EXPECT_THROW((void)Envelope::decode_batch(w.take()),
                 common::SerializationError);
  }
}

TEST(BatchFraming, EncodeBatchIsExactlyOneAllocation) {
  common::Rng rng(0xA110C);
  std::vector<Envelope> in;
  for (int i = 0; i < 8; ++i) in.push_back(random_envelope(rng));
  // Warm up once (interning, lazy init), then measure.
  (void)Envelope::encode_batch(in);
  const std::uint64_t before = common::alloc_count();
  const serial::Buffer wire = Envelope::encode_batch(in);
  const std::uint64_t after = common::alloc_count();
  EXPECT_EQ(after - before, 1u)
      << "a " << wire.size() << "-byte batch gather must be one pre-sized "
      << "Writer allocation";
}

// --- (2) transport: coalescing, pipelining, wire_seq, fast path -------------

struct Pair {
  sim::Simulation sim;
  net::Network net;
  common::NodeId a, b;
  rmi::Transport ta, tb;

  explicit Pair(std::uint64_t seed = 1,
                net::CostModel model = testing::chaos_model())
      : sim(seed),
        net(sim, model),
        a(net.add_node("a")),
        b(net.add_node("b")),
        ta(net, a),
        tb(net, b) {
    net.set_fifo_checks(true);
  }

  void enable_batching(common::SimDuration quantum = 250) {
    rmi::BatchOptions batch;
    batch.enabled = true;
    batch.flush_quantum_us = quantum;
    ta.set_batching(batch);
    tb.set_batching(batch);
  }

  std::int64_t counter(const std::string& name) {
    return sim.stats().counter(name);
  }
};

serial::Buffer seq_body(std::uint64_t seq) {
  serial::Writer w(8);
  w.write_u64(seq);
  return w.take();
}

TEST(BatchTransport, WindowOfInvokesRidesOneFrameEachWay) {
  Pair p;
  p.enable_batching();
  std::vector<std::uint64_t> executed;
  p.tb.register_service("batch.echo",
                        [&executed](common::NodeId,
                                    const serial::BufferChain& body,
                                    rmi::Replier replier) {
                          serial::ChainReader r(body);
                          executed.push_back(r.read_u64());
                          replier.ok(body);
                        });
  constexpr int kCalls = 10;
  int completed = 0;
  for (std::uint64_t seq = 0; seq < kCalls; ++seq) {
    p.ta.call(p.b, "batch.echo", seq_body(seq),
              [&completed](rmi::CallResult r) {
                ASSERT_TRUE(r.ok) << r.error;
                ++completed;
              });
  }
  ASSERT_TRUE(p.sim.run_until([&] { return completed == kCalls; }));

  // All 10 requests were issued inside one flush quantum, so they ride ONE
  // batch frame; their replies ride one frame back.  One net::Message per
  // frame means one wire_seq per frame — which the enabled FIFO self-check
  // would flag if any inner invoke were stamped separately.
  EXPECT_EQ(p.counter("rmi.batches_sent"), 2);
  EXPECT_EQ(p.counter("rmi.batched_invokes"), 2 * kCalls);
  EXPECT_EQ(p.counter("rmi.batch_singletons"), 0);
  EXPECT_EQ(p.counter("net.messages_sent"), 2);
  EXPECT_EQ(p.counter("net.fifo_violations"), 0);

  // Per-link FIFO through the batch: execution order == issue order.
  ASSERT_EQ(executed.size(), static_cast<std::size_t>(kCalls));
  for (std::uint64_t seq = 0; seq < kCalls; ++seq) {
    EXPECT_EQ(executed[seq], seq) << "batched invokes reordered";
  }
}

TEST(BatchTransport, LoneInvokeCollapsesToTheFastPathEnvelope) {
  Pair p;
  p.enable_batching();
  p.tb.register_service("batch.lone",
                        [](common::NodeId, const serial::BufferChain& body,
                           rmi::Replier replier) { replier.ok(body); });
  Envelope::reset_header_counters();
  bool done = false;
  p.ta.call(p.b, "batch.lone", seq_body(1), [&done](rmi::CallResult r) {
    ASSERT_TRUE(r.ok) << r.error;
    done = true;
  });
  ASSERT_TRUE(p.sim.run_until([&] { return done; }));

  // One request, one reply: each was alone in its link queue at flush
  // time, so each collapsed to a plain envelope — no batch frame, and the
  // single-fragment fast path still taken for both headers.
  EXPECT_EQ(p.counter("rmi.batches_sent"), 0);
  EXPECT_EQ(p.counter("rmi.batch_singletons"), 2);
  EXPECT_EQ(Envelope::fast_path_headers(), 2u);
  EXPECT_EQ(Envelope::list_path_headers(), 0u);
}

TEST(BatchTransport, RequestAndReplyStreamsPipelinePerQuantum) {
  // A windowed pipeline: each completion launches the next call.  With the
  // flush quantum aligned to the link latency, batches of requests and
  // batches of replies each ride one message per quantum — the message
  // count stays a small multiple of the quantum count, not of the calls.
  Pair p;
  p.enable_batching(/*quantum=*/250);
  p.tb.register_service("batch.pipe",
                        [](common::NodeId, const serial::BufferChain& body,
                           rmi::Replier replier) { replier.ok(body); });
  constexpr int kCalls = 64;
  constexpr int kWindow = 8;
  int completed = 0;
  std::uint64_t next_seq = 0;
  std::function<void()> launch = [&] {
    if (next_seq >= kCalls) return;
    p.ta.call(p.b, "batch.pipe", seq_body(next_seq++),
              [&](rmi::CallResult r) {
                ASSERT_TRUE(r.ok) << r.error;
                ++completed;
                launch();
              });
  };
  for (int i = 0; i < kWindow; ++i) launch();
  ASSERT_TRUE(p.sim.run_until([&] { return completed == kCalls; }));

  const std::int64_t messages = p.counter("net.messages_sent");
  EXPECT_LT(messages, kCalls) << "batching never amortized the wire";
  EXPECT_GE(p.counter("rmi.batched_invokes"),
            2 * p.counter("rmi.batches_sent"));
  EXPECT_EQ(p.counter("net.fifo_violations"), 0);
}

TEST(BatchTransport, ValidatesOptions) {
  Pair p;
  rmi::BatchOptions bad;
  bad.enabled = true;
  bad.flush_quantum_us = 0;
  EXPECT_THROW(p.ta.set_batching(bad), common::MageError);
  bad.flush_quantum_us = 100;
  bad.max_batch_invokes = 0;
  EXPECT_THROW(p.ta.set_batching(bad), common::MageError);
}

// --- (3) one-way verbs ------------------------------------------------------

TEST(OneWay, ExecutesWithUnarmedReplierAndNoReplyState) {
  Pair p;
  int executions = 0;
  bool saw_armed = false;
  p.tb.register_service("oneway.note",
                        [&](common::NodeId, const serial::BufferChain&,
                            rmi::Replier replier) {
                          ++executions;
                          saw_armed = replier.armed();
                        });
  p.ta.call_oneway(p.b, "oneway.note", seq_body(7));
  p.sim.run_until_idle();

  EXPECT_EQ(executions, 1);
  EXPECT_FALSE(saw_armed) << "one-way delivery must not arm a Replier";
  EXPECT_EQ(p.counter("rmi.oneway_calls"), 1);
  EXPECT_EQ(p.counter("rmi.oneway_executions"), 1);
  // No pending-table entry was ever created, so nothing can retransmit —
  // and the receive path touched neither the reply cache nor caller marks.
  EXPECT_EQ(p.counter("rmi.retransmissions"), 0);
  EXPECT_EQ(p.counter("rmi.duplicates_suppressed"), 0);
  EXPECT_EQ(p.counter("rmi.reply_cache_evictions"), 0);

  // Idle far past any retry horizon: still exactly one execution.
  p.sim.run_for(10'000'000);
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(p.counter("rmi.retransmissions"), 0);
}

TEST(OneWay, MissingServiceIsCountedNotFatal) {
  Pair p;
  p.ta.call_oneway(p.b, "oneway.nobody-home", seq_body(1));
  p.sim.run_until_idle();
  EXPECT_EQ(p.counter("rmi.oneway_calls"), 1);
  EXPECT_EQ(p.counter("rmi.oneway_executions"), 0);
  EXPECT_EQ(p.counter("rmi.oneway_no_service"), 1);
}

TEST(OneWay, BatchesAlongsideRequestsOnTheSameLink) {
  Pair p;
  p.enable_batching();
  int notes = 0;
  p.tb.register_service("oneway.mixed-note",
                        [&notes](common::NodeId, const serial::BufferChain&,
                                 rmi::Replier) { ++notes; });
  p.tb.register_service("oneway.mixed-echo",
                        [](common::NodeId, const serial::BufferChain& body,
                           rmi::Replier replier) { replier.ok(body); });
  int completed = 0;
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    p.ta.call_oneway(p.b, "oneway.mixed-note", seq_body(seq));
    p.ta.call(p.b, "oneway.mixed-echo", seq_body(seq),
              [&completed](rmi::CallResult r) {
                ASSERT_TRUE(r.ok) << r.error;
                ++completed;
              });
  }
  ASSERT_TRUE(p.sim.run_until([&] { return completed == 4; }));
  EXPECT_EQ(notes, 4);
  // 4 one-ways + 4 requests ride ONE frame; 4 replies ride one back.
  EXPECT_EQ(p.counter("rmi.batches_sent"), 2);
  EXPECT_EQ(p.counter("rmi.batched_invokes"), 12);
  EXPECT_EQ(p.counter("net.messages_sent"), 2);
}

// --- (4) adaptive reply-cache sizing ----------------------------------------

// One caller hammering sequential syncs: every executed request inserts a
// reply-cache entry on the server, so capacity pressure is exact and
// deterministic.
struct AdaptivePair {
  sim::Simulation sim{11};
  net::Network net{sim, testing::chaos_model()};
  common::NodeId a{net.add_node("a")};
  common::NodeId b{net.add_node("b")};
  rmi::Transport ta{net, a};
  rmi::Transport tb{net, b, /*reply_cache_capacity=*/8};
  common::VerbId verb{common::intern_verb("adaptive.count")};
  int executions = 0;

  explicit AdaptivePair(rmi::AdaptiveCacheOptions options = default_options()) {
    tb.register_service(verb, [this](common::NodeId,
                                     const serial::BufferChain&,
                                     rmi::Replier replier) {
      ++executions;
      replier.ok({});
    });
    tb.set_adaptive_reply_cache(options);
  }

  static rmi::AdaptiveCacheOptions default_options() {
    rmi::AdaptiveCacheOptions o;
    o.enabled = true;
    o.floor = 8;
    o.ceiling = 64;
    o.grow_threshold = 2;
    o.idle_shrink_us = 50'000;
    return o;
  }

  void calls(int n) {
    for (int i = 0; i < n; ++i) (void)ta.call_sync(b, verb, {});
  }
  std::int64_t counter(const std::string& name) {
    return sim.stats().counter(name);
  }
};

TEST(AdaptiveReplyCache, GrowsUnderEvictionPressureToTheCeiling) {
  AdaptivePair p;
  ASSERT_EQ(p.tb.reply_cache_capacity(), 8u);
  p.calls(50);
  // Each capacity step costs exactly grow_threshold evictions before the
  // ring doubles: 8 -> 16 -> 32 -> 64, then pressure stops (50 < 64 live).
  EXPECT_EQ(p.tb.reply_cache_capacity(), 64u);
  EXPECT_EQ(p.counter("rmi.reply_cache_grows"), 3);
  EXPECT_EQ(p.counter("rmi.reply_cache_shrinks"), 0);
  EXPECT_EQ(p.counter("rmi.reply_cache_evictions"), 3 * 2);
  EXPECT_EQ(p.counter("rmi.evicted_reexecutions"), 0);
  EXPECT_EQ(p.counter("rmi.reply_cache_capacity"), 64);
  EXPECT_EQ(p.counter("rmi.reply_cache_capacity_highwater"), 64);
}

TEST(AdaptiveReplyCache, FixedCacheChurnsWhereAdaptiveStaysQuiet) {
  // The contrast the bench asserts at storm scale, reproduced small: a
  // 200-call hammer against a FIXED 8-entry ring evicts on nearly every
  // call; an adaptive ring whose ceiling covers the working set pays
  // grow_threshold evictions per capacity step and then goes quiet.
  AdaptivePair fixed{[] {
    rmi::AdaptiveCacheOptions off;
    off.enabled = false;
    return off;
  }()};
  fixed.calls(200);
  const std::int64_t fixed_evictions =
      fixed.counter("rmi.reply_cache_evictions");
  EXPECT_GE(fixed_evictions, 190);

  AdaptivePair adaptive{[] {
    rmi::AdaptiveCacheOptions o = AdaptivePair::default_options();
    o.ceiling = 256;  // room for the whole working set
    return o;
  }()};
  adaptive.calls(200);
  const std::int64_t adaptive_evictions =
      adaptive.counter("rmi.reply_cache_evictions");
  EXPECT_LT(adaptive_evictions * 10, fixed_evictions);
}

TEST(AdaptiveReplyCache, ShrinksBackToTheFloorWhenIdle) {
  AdaptivePair p;
  p.calls(50);
  ASSERT_EQ(p.tb.reply_cache_capacity(), 64u);

  // One halving per idle period, each triggered by the next insert after
  // the period elapses: 64 -> 32 -> 16 -> 8, then pinned at the floor.
  for (std::size_t expect : {32u, 16u, 8u, 8u}) {
    p.sim.run_for(60'000);  // > idle_shrink_us since the last eviction
    p.calls(1);
    EXPECT_EQ(p.tb.reply_cache_capacity(), expect);
  }
  EXPECT_EQ(p.counter("rmi.reply_cache_shrinks"), 3);
  // High water remembers the peak even after the shrink.
  EXPECT_EQ(p.counter("rmi.reply_cache_capacity_highwater"), 64);
  EXPECT_EQ(p.counter("rmi.reply_cache_capacity"), 8);
}

TEST(AdaptiveReplyCache, EvictedReexecutionTriggersAnImmediateGrow) {
  // An eviction-caused re-execution is the harm the cache exists to
  // prevent: one observed instance must trip the growth threshold
  // instantly, not after `grow_threshold` more evictions.
  AdaptivePair p{[] {
    rmi::AdaptiveCacheOptions o = AdaptivePair::default_options();
    o.grow_threshold = 1000;  // passive growth effectively disabled
    return o;
  }()};
  p.calls(10);  // fills the 8-ring; ids 1 and 2 evicted
  ASSERT_EQ(p.tb.reply_cache_capacity(), 8u);
  ASSERT_GE(p.counter("rmi.reply_cache_evictions"), 2);

  // Hand-craft a retransmission of evicted request 1 (mirrors the
  // chaos_test eviction probe): it re-executes AND flags the ring.
  rmi::Envelope env;
  env.kind = rmi::EnvelopeKind::Request;
  env.request_id = common::RequestId{1};
  env.verb = p.verb;
  p.net.send(net::Message{p.a, p.b, p.verb, net::MsgKind::Request,
                          env.encode_header(), env.body});
  p.sim.run_until_idle();
  EXPECT_EQ(p.counter("rmi.evicted_reexecutions"), 1);
  EXPECT_EQ(p.executions, 11);

  // The re-execution's own insert found the ring full and doubled it
  // despite the sky-high passive threshold.
  EXPECT_EQ(p.tb.reply_cache_capacity(), 16u);
  EXPECT_EQ(p.counter("rmi.reply_cache_grows"), 1);
}

TEST(AdaptiveReplyCache, ValidatesOptions) {
  Pair p;
  rmi::AdaptiveCacheOptions bad;
  bad.enabled = true;
  bad.floor = 0;
  EXPECT_THROW(p.tb.set_adaptive_reply_cache(bad), common::MageError);
  bad.floor = 64;
  bad.ceiling = 8;
  EXPECT_THROW(p.tb.set_adaptive_reply_cache(bad), common::MageError);
  bad.ceiling = 128;
  bad.grow_threshold = 0;
  EXPECT_THROW(p.tb.set_adaptive_reply_cache(bad), common::MageError);
}

// --- (5) chaos regressions: batched + one-way under faults ------------------

using testing::ChaosParams;
using testing::ChaosRun;
using testing::run_chaos_storm;

ChaosParams batched_chaos_params() {
  ChaosParams params;
  params.batching = true;
  params.oneway_notes = true;
  return params;
}

void expect_batched_chaos_invariants(const ChaosRun& run, std::uint64_t seed,
                                     int threads) {
  SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
               std::to_string(threads));
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.failed_calls, 0);
  EXPECT_TRUE(run.every_invoke_exactly_once());
  EXPECT_TRUE(run.every_note_at_most_once());
  EXPECT_EQ(run.fifo_violations, 0);
  EXPECT_EQ(run.pending_fault_events, 0);
  EXPECT_GT(run.faults_applied, 0);
  // Batching genuinely engaged: multi-invoke frames dominated.
  EXPECT_GT(run.batches_sent, 0);
  EXPECT_GE(run.batched_invokes, 2 * run.batches_sent);
  EXPECT_GT(run.oneway_calls, 0);
}

const std::uint64_t kBatchChaosSeeds[] = {0xA1, 0xB2C3, 0xDEADBEEF};

TEST(BatchChaos, SeedReplaysBitIdenticallyAt1_2_8Workers) {
  const ChaosParams params = batched_chaos_params();
  for (const std::uint64_t seed : kBatchChaosSeeds) {
    const ChaosRun r1 = run_chaos_storm(seed, 1, params);
    const ChaosRun r2 = run_chaos_storm(seed, 2, params);
    const ChaosRun r8 = run_chaos_storm(seed, 8, params);
    expect_batched_chaos_invariants(r1, seed, 1);
    expect_batched_chaos_invariants(r2, seed, 2);
    expect_batched_chaos_invariants(r8, seed, 8);
    // The tentpole determinism claim: batched + one-way traffic replays
    // bit-identically at any worker count — execution order, shard-local
    // timestamps, every drop and re-delivery.
    EXPECT_EQ(r1.node_digests, r2.node_digests) << "seed " << seed;
    EXPECT_EQ(r1.node_digests, r8.node_digests) << "seed " << seed;
    EXPECT_EQ(r1.note_exec_counts, r2.note_exec_counts) << "seed " << seed;
    EXPECT_EQ(r1.note_exec_counts, r8.note_exec_counts) << "seed " << seed;
  }
}

TEST(BatchChaos, DroppedBatchesReexecuteWithoutDuplicateSideEffects) {
  // Under every seed's mandatory loss burst some batch frames are dropped
  // whole.  Their requests retransmit (individually or re-coalesced) and
  // the execution counters prove each side effect landed exactly once —
  // a dropped batch re-executes as a unit with zero duplicates.
  const ChaosParams params = batched_chaos_params();
  for (const std::uint64_t seed : kBatchChaosSeeds) {
    const ChaosRun run = run_chaos_storm(seed, 2, params);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_GT(run.retransmissions, 0) << "chaos never dropped anything";
    EXPECT_TRUE(run.every_invoke_exactly_once());
    EXPECT_TRUE(run.every_note_at_most_once());
  }
}

TEST(BatchChaos, DriverEngineHoldsTheSameProperties) {
  const ChaosParams params = batched_chaos_params();
  const ChaosRun run = run_chaos_storm(0xB2C3, /*threads=*/0, params);
  expect_batched_chaos_invariants(run, 0xB2C3, 0);
}

}  // namespace
}  // namespace mage
