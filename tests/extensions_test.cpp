// Tests for the Section 7 extensions: access control, resource allocation,
// administrative domains, restricted mobility attributes, and static-field
// coherency (the Section 4.2 limitation, implemented).
#include <gtest/gtest.h>

#include "support/test_objects.hpp"

namespace mage::rts {
namespace {

using core::Grev;
using core::RestrictedAttribute;
using testing::make_logic_system;

// --- access control --------------------------------------------------------------

struct AccessFixture : ::testing::Test {
  std::unique_ptr<MageSystem> system = make_logic_system(3);
  common::NodeId n1{1}, n2{2}, n3{3};
};

TEST_F(AccessFixture, DefaultPolicyTrustsEveryone) {
  // "Currently, MAGE trusts its constituent servers."
  system->client(n2).create_component("obj", "Counter");
  common::NodeId cloc = n2;
  EXPECT_EQ(system->client(n1).invoke<std::int64_t>(cloc, "obj", "increment"),
            1);
}

TEST_F(AccessFixture, DenyInvokeByNode) {
  system->client(n2).create_component("obj", "Counter");
  system->server(n2).access().deny_node(Operation::Invoke, n1);
  common::NodeId cloc = n2;
  EXPECT_THROW((void)system->client(n1).invoke<std::int64_t>(cloc, "obj",
                                                             "increment"),
               common::AccessDeniedError);
  // Another caller is unaffected.
  cloc = n2;
  EXPECT_EQ(system->client(n3).invoke<std::int64_t>(cloc, "obj", "increment"),
            1);
}

TEST_F(AccessFixture, DenyMoveOutProtectsPinnedObjects) {
  system->client(n2).create_component("obj", "Counter");
  system->server(n2).access().deny_node(Operation::MoveOut, n1);
  EXPECT_THROW(system->client(n1).move("obj", n3),
               common::AccessDeniedError);
  EXPECT_TRUE(system->server(n2).registry().has_local("obj"));
  // The object's own namespace can still move it.
  EXPECT_EQ(system->client(n2).move("obj", n3), n3);
}

TEST_F(AccessFixture, DenyTransferInClosesTheDoor) {
  system->client(n1).create_component("obj", "Counter");
  system->server(n2).access().deny_node(Operation::TransferIn, n1);
  EXPECT_THROW(system->client(n1).transfer_out("obj", n2),
               common::AccessDeniedError);
  // Nothing was lost: the object is still at n1.
  EXPECT_TRUE(system->client(n1).has_local("obj"));
}

TEST_F(AccessFixture, DenyByDefaultAllowByNode) {
  system->client(n2).create_component("obj", "Counter");
  auto& access = system->server(n2).access();
  access.set_default(Verdict::Deny);
  access.allow_node(Operation::Invoke, n3);
  common::NodeId cloc = n2;
  EXPECT_THROW((void)system->client(n1).invoke<std::int64_t>(cloc, "obj",
                                                             "increment"),
               common::AccessDeniedError);
  cloc = n2;
  EXPECT_EQ(system->client(n3).invoke<std::int64_t>(cloc, "obj", "increment"),
            1);
}

TEST_F(AccessFixture, DomainRulesApply) {
  system->assign_domain(n1, "field");
  system->assign_domain(n2, "hq");
  system->assign_domain(n3, "hq");
  system->client(n2).create_component("obj", "Counter");
  system->server(n2).access().deny_domain(Operation::Invoke, "field");
  common::NodeId cloc = n2;
  EXPECT_THROW((void)system->client(n1).invoke<std::int64_t>(cloc, "obj",
                                                             "increment"),
               common::AccessDeniedError);
  cloc = n2;
  EXPECT_EQ(system->client(n3).invoke<std::int64_t>(cloc, "obj", "increment"),
            1);  // same-domain caller passes
}

TEST_F(AccessFixture, NodeRuleOverridesDomainRule) {
  system->assign_domain(n1, "field");
  system->client(n2).create_component("obj", "Counter");
  auto& access = system->server(n2).access();
  access.deny_domain(Operation::Invoke, "field");
  access.allow_node(Operation::Invoke, n1);  // n1 is specially trusted
  common::NodeId cloc = n2;
  EXPECT_EQ(system->client(n1).invoke<std::int64_t>(cloc, "obj", "increment"),
            1);
}

TEST_F(AccessFixture, SelfIsAlwaysTrusted) {
  system->client(n1).create_component("obj", "Counter");
  system->server(n1).access().set_default(Verdict::Deny);
  common::NodeId cloc = n1;
  EXPECT_EQ(system->client(n1).invoke<std::int64_t>(cloc, "obj", "increment"),
            1);
}

TEST_F(AccessFixture, DenialsAreCounted) {
  system->client(n2).create_component("obj", "Counter");
  system->server(n2).access().deny_node(Operation::Invoke, n1);
  common::NodeId cloc = n2;
  EXPECT_THROW((void)system->client(n1).invoke<std::int64_t>(cloc, "obj",
                                                             "increment"),
               common::AccessDeniedError);
  EXPECT_EQ(system->server(n2).access().denials(), 1u);
  EXPECT_EQ(system->stats().counter("rts.access_denials"), 1);
}

TEST(AccessController, OperationNames) {
  EXPECT_STREQ(operation_name(Operation::MoveOut), "move-out");
  EXPECT_STREQ(operation_name(Operation::TransferIn), "transfer-in");
}

// --- resource allocation -----------------------------------------------------------

struct ResourceFixture : ::testing::Test {
  std::unique_ptr<MageSystem> system = make_logic_system(3);
  common::NodeId n1{1}, n2{2}, n3{3};
};

TEST_F(ResourceFixture, ObjectCapacityRejectsTransfers) {
  system->server(n2).resources().max_objects = 1;
  system->client(n1).create_component("a", "Counter");
  system->client(n1).create_component("b", "Counter");
  EXPECT_EQ(system->client(n1).move("a", n2), n2);
  EXPECT_THROW(system->client(n1).move("b", n2), common::MageError);
  // "b" stayed safely at home.
  EXPECT_TRUE(system->client(n1).has_local("b"));
  EXPECT_EQ(system->stats().counter("rts.capacity_rejections"), 1);
}

TEST_F(ResourceFixture, CapacityFreesUpWhenObjectLeaves) {
  system->server(n2).resources().max_objects = 1;
  system->client(n1).create_component("a", "Counter");
  system->client(n1).create_component("b", "Counter");
  system->client(n1).move("a", n2);
  system->client(n1).move("a", n3);  // vacate
  EXPECT_EQ(system->client(n1).move("b", n2), n2);
}

TEST_F(ResourceFixture, TransferSizeLimit) {
  system->server(n2).resources().max_transfer_bytes = 4;  // tiny
  system->client(n1).create_component("notes", "Notebook");
  common::NodeId cloc = n1;
  system->client(n1).invoke<serial::Unit>(cloc, "notes", "append",
                                          std::string(100, 'x'));
  EXPECT_THROW(system->client(n1).move("notes", n2), common::MageError);
}

TEST_F(ResourceFixture, InstantiateRespectsCapacity) {
  system->server(n2).resources().max_objects = 0;
  EXPECT_THROW(
      system->client(n1).instantiate_at(n2, "Counter", "factoryObj"),
      common::CapacityError);
}

TEST_F(ResourceFixture, RejectedMoverCanPickAnotherTarget) {
  // The admission-control loop an attribute would run: first choice full,
  // fall back to the next candidate.
  system->server(n2).resources().max_objects = 0;
  system->client(n1).create_component("obj", "Counter");
  common::NodeId placed = common::kNoNode;
  for (auto candidate : {n2, n3}) {
    try {
      placed = system->client(n1).move("obj", candidate);
      break;
    } catch (const common::MageError&) {
      continue;
    }
  }
  EXPECT_EQ(placed, n3);
}

// --- administrative domains -----------------------------------------------------------

TEST(Domains, InterdomainLatencyApplies) {
  auto system = testing::make_classic_system(3);
  const common::NodeId n1{1}, n2{2}, n3{3};
  system->assign_domain(n1, "west");
  system->assign_domain(n2, "west");
  system->assign_domain(n3, "east");
  system->set_interdomain_latency(common::msec(80));  // a WAN hop

  auto& c1 = system->client(n1);
  c1.ping(n2);  // warm connections
  c1.ping(n3);

  const auto t0 = system->simulation().now();
  c1.ping(n2);
  const auto same_domain = system->simulation().now() - t0;
  const auto t1 = system->simulation().now();
  c1.ping(n3);
  const auto cross_domain = system->simulation().now() - t1;

  // Ping round trip crosses the WAN twice.
  EXPECT_GE(cross_domain - same_domain, common::msec(150));
}

TEST(Domains, MembershipQuery) {
  auto system = make_logic_system(4);
  system->assign_domain(common::NodeId{1}, "a");
  system->assign_domain(common::NodeId{2}, "a");
  system->assign_domain(common::NodeId{3}, "b");
  EXPECT_EQ(system->nodes_in_domain("a").size(), 2u);
  EXPECT_EQ(system->nodes_in_domain("b").size(), 1u);
  EXPECT_EQ(system->nodes_in_domain("").size(), 1u);  // unassigned
}

// --- restricted attributes --------------------------------------------------------------

struct RestrictedFixture : ::testing::Test {
  std::unique_ptr<MageSystem> system = make_logic_system(4);
  common::NodeId n1{1}, n2{2}, n3{3}, n4{4};
};

TEST_F(RestrictedFixture, TargetOutsideSetThrows) {
  system->client(n1).create_component("obj", "Counter");
  RestrictedAttribute restricted(
      std::make_unique<Grev>(system->client(n1), "obj", n4),
      /*allowed_locations=*/{n1, n2, n3},
      /*allowed_targets=*/{n2, n3});
  EXPECT_THROW((void)restricted.bind(), common::CoercionError);
  EXPECT_TRUE(system->client(n1).has_local("obj"));  // nothing moved
}

TEST_F(RestrictedFixture, TargetInsideSetBinds) {
  system->client(n1).create_component("obj", "Counter");
  RestrictedAttribute restricted(
      std::make_unique<Grev>(system->client(n1), "obj", n2), {n1, n2, n3},
      {n2, n3});
  auto handle = restricted.bind();
  EXPECT_EQ(handle.location(), n2);
  EXPECT_EQ(handle.invoke<std::int64_t>("increment"), 1);
}

TEST_F(RestrictedFixture, ComponentStrayedOutsideLocationsThrows) {
  system->client(n4).create_component("obj", "Counter", /*is_public=*/true);
  RestrictedAttribute restricted(
      std::make_unique<Grev>(system->client(n1), "obj", n2), {n1, n2, n3},
      {n2});
  EXPECT_THROW((void)restricted.bind(), common::CoercionError);
}

TEST_F(RestrictedFixture, EmptySetsMeanUnrestricted) {
  system->client(n1).create_component("obj", "Counter");
  RestrictedAttribute restricted(
      std::make_unique<Grev>(system->client(n1), "obj", n4), {}, {});
  EXPECT_EQ(restricted.bind().location(), n4);
}

TEST_F(RestrictedFixture, ExposesInnerModelAndTriple) {
  system->client(n1).create_component("obj", "Counter");
  RestrictedAttribute restricted(
      std::make_unique<Grev>(system->client(n1), "obj", n2), {n1}, {n2});
  EXPECT_EQ(restricted.model(), core::Model::Grev);
  EXPECT_EQ(restricted.target(), n2);
}

// --- static-field coherency -----------------------------------------------------------

struct StaticsFixture : ::testing::Test {
  std::unique_ptr<MageSystem> system = make_logic_system(3);
  common::NodeId n1{1}, n2{2}, n3{3};

  StaticsFixture() { system->world().set_statics_home("Counter", n1); }
};

TEST_F(StaticsFixture, PutThenGetFromAnotherNode) {
  system->client(n2).static_put<std::int64_t>("Counter", "total", 42);
  EXPECT_EQ(system->client(n3).static_get<std::int64_t>("Counter", "total"),
            42);
}

TEST_F(StaticsFixture, WritesFromManyNodesSerialize) {
  for (int i = 0; i < 10; ++i) {
    auto& client = system->client(common::NodeId{
        static_cast<std::uint32_t>((i % 3) + 1)});
    const auto current = [&]() -> std::int64_t {
      try {
        return client.static_get<std::int64_t>("Counter", "sum");
      } catch (const common::NotFoundError&) {
        return 0;
      }
    }();
    client.static_put<std::int64_t>("Counter", "sum", current + 1);
  }
  EXPECT_EQ(system->client(n1).static_get<std::int64_t>("Counter", "sum"),
            10);
}

TEST_F(StaticsFixture, MissingKeyThrows) {
  EXPECT_THROW(
      (void)system->client(n2).static_get<std::int64_t>("Counter", "nope"),
      common::NotFoundError);
}

TEST_F(StaticsFixture, NoHomeDeclaredThrows) {
  EXPECT_THROW(system->client(n1).static_put<std::int64_t>("Notebook", "k", 1),
               common::MageError);
}

TEST_F(StaticsFixture, StringValues) {
  system->client(n2).static_put<std::string>("Counter", "owner", "acme");
  EXPECT_EQ(system->client(n3).static_get<std::string>("Counter", "owner"),
            "acme");
}

TEST_F(StaticsFixture, StaticsStayPutWhenObjectsMigrate) {
  // The point of the coherency model: instances move, class data does not.
  system->client(n1).create_component("c", "Counter");
  system->client(n1).static_put<std::int64_t>("Counter", "generation", 7);
  system->client(n1).move("c", n2);
  system->client(n2).move("c", n3);
  EXPECT_EQ(system->client(n3).static_get<std::int64_t>("Counter",
                                                        "generation"),
            7);
  EXPECT_EQ(system->server(n1).statics().at("Counter").size(), 1u);
}

TEST_F(StaticsFixture, WrongHomeIsRejected) {
  proto::StaticPutRequest request;
  request.class_name = "Counter";
  request.key = "k";
  auto reply_bytes = [&]() -> serial::BufferChain {
    // Send the put to n2, which is not the statics home.
    return system->transport(n3).call_sync(
        n2, proto::verbs::kStaticPut, request.encode());
  };
  EXPECT_THROW((void)reply_bytes(), common::RemoteInvocationError);
}

}  // namespace
}  // namespace mage::rts
