// Tests for the mobility attribute hierarchy: each model's bind semantics,
// the Table 1 triples, rebinding, factory flavours, itineraries.
#include <gtest/gtest.h>

#include "support/test_objects.hpp"

namespace mage::core {
namespace {

using rts::MageSystem;
using testing::Counter;
using testing::make_logic_system;

struct AttrFixture : ::testing::Test {
  std::unique_ptr<MageSystem> system = make_logic_system(4);
  common::NodeId n1{1}, n2{2}, n3{3}, n4{4};

  rts::MageClient& client(common::NodeId n) { return system->client(n); }

  void create_counter(common::NodeId at, const std::string& name = "counter",
                      bool is_public = false) {
    client(at).create_component(name, "Counter", is_public);
  }

  common::NodeId where(const std::string& name = "counter") {
    for (auto node : system->nodes()) {
      if (system->server(node).registry().has_local(name)) return node;
    }
    return common::kNoNode;
  }
};

// --- Table 1: the design-space triples ------------------------------------------

TEST(ModelTriple, Table1Values) {
  EXPECT_EQ(canonical_triple(Model::MobileAgent),
            (ModelTriple{Locality::Remote, Locality::Remote, true}));
  EXPECT_EQ(canonical_triple(Model::Rev),
            (ModelTriple{Locality::Local, Locality::Remote, true}));
  EXPECT_EQ(canonical_triple(Model::Rpc),
            (ModelTriple{Locality::Remote, Locality::Remote, false}));
  EXPECT_EQ(canonical_triple(Model::Cle),
            (ModelTriple{Locality::Unspecified, Locality::Unspecified,
                         false}));
  EXPECT_EQ(canonical_triple(Model::Cod),
            (ModelTriple{Locality::Remote, Locality::Local, true}));
  EXPECT_EQ(canonical_triple(Model::Lpc),
            (ModelTriple{Locality::Local, Locality::Local, false}));
}

TEST(ModelTriple, TriplesAreUniquePerModel) {
  const Model models[] = {Model::Lpc, Model::Rpc,  Model::Cod, Model::Rev,
                          Model::Cle, Model::Grev, Model::MobileAgent};
  for (auto a : models) {
    for (auto b : models) {
      if (a == b) continue;
      if (a == Model::Cle && b == Model::Grev) continue;  // differ in moves
      if (a == Model::Grev && b == Model::Cle) continue;
      EXPECT_NE(canonical_triple(a), canonical_triple(b))
          << model_name(a) << " vs " << model_name(b);
    }
  }
  // CLE and GREV share <unspecified, unspecified> but differ in Moves.
  EXPECT_NE(canonical_triple(Model::Cle).moves,
            canonical_triple(Model::Grev).moves);
}

TEST(ModelTriple, ToStringMatchesPaperNotation) {
  EXPECT_EQ(to_string(canonical_triple(Model::Cod)),
            "<remote, local, yes>");
  EXPECT_EQ(to_string(canonical_triple(Model::Cle)),
            "<not specified, not specified, no>");
}

// --- LPC --------------------------------------------------------------------------

TEST_F(AttrFixture, LpcBindsLocalComponent) {
  create_counter(n1);
  Lpc lpc(client(n1), "counter");
  auto h = lpc.bind();
  EXPECT_EQ(h.location(), n1);
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
}

TEST_F(AttrFixture, LpcThrowsOnRemoteComponent) {
  create_counter(n2);
  Lpc lpc(client(n1), "counter");
  EXPECT_THROW((void)lpc.bind(), common::CoercionError);
}

// --- RPC ------------------------------------------------------------------------

TEST_F(AttrFixture, RpcReturnsStubWhenAtTarget) {
  create_counter(n2);
  Rpc rpc(client(n1), "counter", n2);
  auto h = rpc.bind();
  EXPECT_EQ(h.location(), n2);
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
  EXPECT_EQ(where(), n2);  // RPC never moves anything
}

TEST_F(AttrFixture, RpcThrowsWhenObjectNotAtTarget) {
  create_counter(n3);
  Rpc rpc(client(n1), "counter", n2);
  EXPECT_THROW((void)rpc.bind(), common::CoercionError);
}

TEST_F(AttrFixture, RpcThrowsWhenObjectLocal) {
  create_counter(n1);
  Rpc rpc(client(n1), "counter", n2);
  EXPECT_THROW((void)rpc.bind(), common::CoercionError);
}

TEST_F(AttrFixture, RpcToLocalTargetWorks) {
  // target == caller and the object is there: "remote at target" degenerate
  // case; the stub is a loopback stub.
  create_counter(n1);
  Rpc rpc(client(n1), "counter", n1);
  auto h = rpc.bind();
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
}

// --- COD -----------------------------------------------------------------------

TEST_F(AttrFixture, CodPullsRemoteObjectLocal) {
  create_counter(n2);
  common::NodeId cloc = n2;
  client(n2).invoke<std::int64_t>(cloc, "counter", "add", std::int64_t{5});
  Cod cod(client(n1), "counter");
  auto h = cod.bind();
  EXPECT_EQ(h.location(), n1);
  EXPECT_EQ(where(), n1);
  EXPECT_EQ(h.invoke<std::int64_t>("get"), 5);  // state travelled
}

TEST_F(AttrFixture, CodOnLocalObjectCoercesToLpc) {
  create_counter(n1);
  Cod cod(client(n1), "counter");
  auto h = cod.bind();
  EXPECT_EQ(h.location(), n1);
  const auto key = std::string("core.actions.COD.") +
                   bind_action_name(BindAction::CoerceToLpc);
  EXPECT_EQ(system->stats().counter(key), 1);
}

TEST_F(AttrFixture, CodFactoryInstantiatesLocally) {
  system->install_class(n2, "Counter");
  Cod cod(client(n1), "Counter", "fresh", n2, FactoryMode::Factory);
  auto h = cod.bind();
  EXPECT_EQ(h.location(), n1);
  EXPECT_TRUE(client(n1).has_local("fresh"));
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
}

TEST_F(AttrFixture, CodFactoryMakesFreshObjectPerBind) {
  system->install_class(n2, "Counter");
  Cod cod(client(n1), "Counter", "fresh", n2, FactoryMode::Factory);
  auto h1 = cod.bind();
  EXPECT_EQ(h1.invoke<std::int64_t>("increment"), 1);
  auto h2 = cod.bind();  // traditional factory: a brand-new object
  EXPECT_EQ(h2.invoke<std::int64_t>("increment"), 1);
}

TEST_F(AttrFixture, CodSingleUseFactoryReusesObject) {
  system->install_class(n2, "Counter");
  Cod cod(client(n1), "Counter", "single", n2,
          FactoryMode::SingleUseFactory);
  auto h1 = cod.bind();
  EXPECT_EQ(h1.invoke<std::int64_t>("increment"), 1);
  auto h2 = cod.bind();  // binds the same object it instantiated
  EXPECT_EQ(h2.invoke<std::int64_t>("increment"), 2);
}

// --- REV -------------------------------------------------------------------------

TEST_F(AttrFixture, RevFactoryInstantiatesAtTarget) {
  // The paper's example: REV("GeoDataFilterImpl", "geoData", "sensor1").
  client(n1).local_server().class_cache().install("Counter");
  Rev rev(client(n1), "Counter", "worker", n2);
  auto h = rev.bind();
  EXPECT_EQ(h.location(), n2);
  EXPECT_TRUE(system->server(n2).registry().has_local("worker"));
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
}

TEST_F(AttrFixture, RevObjectMovesLocalComponentToTarget) {
  create_counter(n1);
  Rev rev(client(n1), "counter", n2);
  auto h = rev.bind();
  EXPECT_EQ(where(), n2);
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
}

TEST_F(AttrFixture, RevObjectAtTargetCoercesToRpc) {
  create_counter(n2);
  Rev rev(client(n1), "counter", n2);
  auto h = rev.bind();
  EXPECT_EQ(where(), n2);  // no move happened
  const auto key = std::string("core.actions.REV.") +
                   bind_action_name(BindAction::CoerceToRpc);
  EXPECT_EQ(system->stats().counter(key), 1);
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
}

TEST_F(AttrFixture, RevObjectMovesRemoteComponentToTarget) {
  create_counter(n3);
  Rev rev(client(n1), "counter", n2);
  auto h = rev.bind();
  EXPECT_EQ(where(), n2);
  EXPECT_EQ(h.location(), n2);
}

TEST_F(AttrFixture, RevRetarget) {
  create_counter(n1);
  Rev rev(client(n1), "counter", n2);
  (void)rev.bind();
  EXPECT_EQ(where(), n2);
  rev.retarget(n3);
  EXPECT_EQ(rev.target(), n3);
  (void)rev.bind();
  EXPECT_EQ(where(), n3);
}

// --- GREV ----------------------------------------------------------------------

TEST_F(AttrFixture, GrevMovesFromThirdPartyNamespace) {
  // Figure 2: P at B requests C move from D to B.
  create_counter(n3);  // C lives at D = n3
  Grev grev(client(n1), "counter", n2);
  auto h = grev.bind();
  EXPECT_EQ(where(), n2);
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
}

TEST_F(AttrFixture, GrevMovesLocalToRemote) {
  create_counter(n1);
  Grev grev(client(n1), "counter", n2);
  (void)grev.bind();
  EXPECT_EQ(where(), n2);
}

TEST_F(AttrFixture, GrevPullsRemoteToLocal) {
  create_counter(n2);
  Grev grev(client(n1), "counter", n1);
  (void)grev.bind();
  EXPECT_EQ(where(), n1);
}

TEST_F(AttrFixture, GrevAtTargetSkipsMove) {
  create_counter(n2);
  Grev grev(client(n1), "counter", n2);
  const auto migrations = system->stats().counter("rts.migrations");
  (void)grev.bind();
  EXPECT_EQ(system->stats().counter("rts.migrations"), migrations);
}

// --- CLE --------------------------------------------------------------------------

TEST_F(AttrFixture, CleFindsComponentWhereverItIs) {
  create_counter(n2, "counter", /*is_public=*/true);
  Cle cle(client(n1), "counter");
  EXPECT_EQ(cle.bind().location(), n2);

  // A "job controller" moves the component; CLE re-finds it.
  client(n3).move("counter", n4);
  auto h = cle.bind();
  EXPECT_EQ(h.location(), n4);
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
}

TEST_F(AttrFixture, CleNeverMoves) {
  create_counter(n3);
  Cle cle(client(n1), "counter");
  (void)cle.bind();
  (void)cle.bind();
  EXPECT_EQ(system->stats().counter("rts.migrations"), 0);
  EXPECT_EQ(where(), n3);
}

// --- MA ---------------------------------------------------------------------------

TEST_F(AttrFixture, AgentMovesAndRunsAsynchronously) {
  create_counter(n1);
  MAgent agent(client(n1), "counter", n2);
  auto h = agent.bind();
  EXPECT_EQ(h.location(), n2);
  h.invoke_oneway("add", std::int64_t{10});
  EXPECT_EQ(h.fetch_result<std::int64_t>(), 10);  // result stayed remote
}

TEST_F(AttrFixture, AgentItineraryVisitsStopsInOrder) {
  create_counter(n1);
  MAgent agent(client(n1), "counter", {n2, n3, n4});
  EXPECT_EQ(agent.stops_remaining(), 3u);
  EXPECT_EQ(agent.bind().location(), n2);
  EXPECT_EQ(agent.bind().location(), n3);
  EXPECT_EQ(agent.bind().location(), n4);
  EXPECT_EQ(where(), n4);
  // Itinerary exhausted: further binds stay at the last stop.
  EXPECT_EQ(agent.bind().location(), n4);
}

TEST_F(AttrFixture, AgentStatePersistsAcrossHops) {
  create_counter(n1);
  MAgent agent(client(n1), "counter", {n2, n3});
  auto h = agent.bind();
  h.invoke_oneway("add", std::int64_t{4});
  EXPECT_EQ(h.fetch_result<std::int64_t>(), 4);
  h = agent.bind();
  EXPECT_EQ(h.invoke<std::int64_t>("get"), 4);
}

TEST_F(AttrFixture, AgentAtTargetCoercesToRpc) {
  create_counter(n2);
  MAgent agent(client(n1), "counter", n2);
  const auto migrations = system->stats().counter("rts.migrations");
  (void)agent.bind();
  EXPECT_EQ(system->stats().counter("rts.migrations"), migrations);
}

TEST_F(AttrFixture, AgentEmptyItineraryThrows) {
  EXPECT_THROW(MAgent(client(n1), "counter", std::vector<common::NodeId>{}),
               common::MageError);
}

// --- rebinding & bookkeeping -------------------------------------------------------

TEST_F(AttrFixture, BindByNameRebindsAttribute) {
  create_counter(n1, "a");
  create_counter(n2, "b");
  Cle cle(client(n1), "a");
  EXPECT_EQ(cle.bind().location(), n1);
  EXPECT_EQ(cle.bind("b").location(), n2);
  EXPECT_EQ(cle.name(), "b");
}

TEST_F(AttrFixture, BindCountsPerModel) {
  create_counter(n1);
  Cle cle(client(n1), "counter");
  (void)cle.bind();
  (void)cle.bind();
  EXPECT_EQ(system->stats().counter("core.binds"), 2);
  EXPECT_EQ(system->stats().counter("core.binds.CLE"), 2);
}

TEST_F(AttrFixture, SharedObjectIsReFoundEachBind) {
  create_counter(n2, "counter", /*is_public=*/true);
  Cod cod(client(n1), "counter");
  (void)cod.bind();
  EXPECT_EQ(where(), n1);
  // Another activity steals it.
  client(n3).move("counter", n3);
  // Because the object is shared, the next bind re-finds and re-pulls it.
  auto h = cod.bind();
  EXPECT_EQ(where(), n1);
  EXPECT_EQ(h.location(), n1);
}

TEST_F(AttrFixture, FindUpdatesCloc) {
  create_counter(n2);
  Cle cle(client(n1), "counter");
  EXPECT_EQ(cle.find(), n2);
  EXPECT_EQ(cle.cloc(), n2);
}

TEST_F(AttrFixture, IsSharedReflectsDirectory) {
  create_counter(n1, "priv", false);
  create_counter(n1, "pub", true);
  Cle a(client(n2), "priv"), b(client(n2), "pub");
  EXPECT_FALSE(a.is_shared());
  EXPECT_TRUE(b.is_shared());
}

}  // namespace
}  // namespace mage::core
