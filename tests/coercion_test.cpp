// Mobility coercion tests: Table 2 verified twice — once against the
// declarative policy matrix, once behaviourally by driving real binds
// through every configuration.
#include <gtest/gtest.h>

#include "support/test_objects.hpp"

namespace mage::core {
namespace {

using testing::make_logic_system;

// --- the declarative matrix (Table 2, verbatim) --------------------------------

struct Cell {
  Model model;
  Situation situation;
  BindAction expected;
};

class Table2 : public ::testing::TestWithParam<Cell> {};

TEST_P(Table2, MatrixMatchesPaper) {
  const auto& cell = GetParam();
  EXPECT_EQ(CoercionPolicy::decide(cell.model, cell.situation),
            cell.expected)
      << model_name(cell.model) << " / " << situation_name(cell.situation);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, Table2,
    ::testing::Values(
        // MA row
        Cell{Model::MobileAgent, Situation::Local, BindAction::Default},
        Cell{Model::MobileAgent, Situation::RemoteAtTarget,
             BindAction::CoerceToRpc},
        Cell{Model::MobileAgent, Situation::RemoteNotAtTarget,
             BindAction::Default},
        // REV row
        Cell{Model::Rev, Situation::Local, BindAction::Default},
        Cell{Model::Rev, Situation::RemoteAtTarget, BindAction::CoerceToRpc},
        Cell{Model::Rev, Situation::RemoteNotAtTarget, BindAction::Default},
        // COD row
        Cell{Model::Cod, Situation::Local, BindAction::CoerceToLpc},
        Cell{Model::Cod, Situation::RemoteAtTarget,
             BindAction::NotApplicable},
        Cell{Model::Cod, Situation::RemoteNotAtTarget, BindAction::Default},
        // RPC row
        Cell{Model::Rpc, Situation::Local, BindAction::RaiseException},
        Cell{Model::Rpc, Situation::RemoteAtTarget, BindAction::Default},
        Cell{Model::Rpc, Situation::RemoteNotAtTarget,
             BindAction::RaiseException},
        // CLE row
        Cell{Model::Cle, Situation::Local, BindAction::Default},
        Cell{Model::Cle, Situation::RemoteAtTarget, BindAction::Default},
        Cell{Model::Cle, Situation::RemoteNotAtTarget,
             BindAction::Default}));

TEST(Coercion, ClassifyMapsConfigurations) {
  EXPECT_EQ(CoercionPolicy::classify(true, false), Situation::Local);
  EXPECT_EQ(CoercionPolicy::classify(true, true), Situation::Local);
  EXPECT_EQ(CoercionPolicy::classify(false, true),
            Situation::RemoteAtTarget);
  EXPECT_EQ(CoercionPolicy::classify(false, false),
            Situation::RemoteNotAtTarget);
}

TEST(Coercion, Names) {
  EXPECT_STREQ(bind_action_name(BindAction::CoerceToLpc), "LPC");
  EXPECT_STREQ(bind_action_name(BindAction::NotApplicable), "n/a");
  EXPECT_STREQ(situation_name(Situation::Local), "Local");
}

// --- behavioural verification -----------------------------------------------------
//
// For every (model, situation) cell we set up the real configuration, bind
// a real attribute, and check the observable outcome: did the object move,
// did an exception fire, was the invocation still correct?

struct BehaviourFixture : ::testing::Test {
  std::unique_ptr<rts::MageSystem> system = make_logic_system(3);
  common::NodeId self{1}, target{2}, elsewhere{3};

  // Places the counter per the situation, with `target` as the attribute's
  // computation target.
  void place(Situation situation) {
    common::NodeId at = self;
    switch (situation) {
      case Situation::Local:
        at = self;
        break;
      case Situation::RemoteAtTarget:
        at = target;
        break;
      case Situation::RemoteNotAtTarget:
        at = elsewhere;
        break;
    }
    system->client(at).create_component("counter", "Counter");
  }

  common::NodeId where() {
    for (auto node : system->nodes()) {
      if (system->server(node).registry().has_local("counter")) return node;
    }
    return common::kNoNode;
  }
};

TEST_F(BehaviourFixture, MaLocalMovesToTarget) {
  place(Situation::Local);
  MAgent agent(system->client(self), "counter", target);
  (void)agent.bind();
  EXPECT_EQ(where(), target);
}

TEST_F(BehaviourFixture, MaRemoteAtTargetStays) {
  place(Situation::RemoteAtTarget);
  MAgent agent(system->client(self), "counter", target);
  (void)agent.bind();
  EXPECT_EQ(where(), target);
  EXPECT_EQ(system->stats().counter("rts.migrations"), 0);
}

TEST_F(BehaviourFixture, MaRemoteNotAtTargetMoves) {
  place(Situation::RemoteNotAtTarget);
  MAgent agent(system->client(self), "counter", target);
  (void)agent.bind();
  EXPECT_EQ(where(), target);
}

TEST_F(BehaviourFixture, RevLocalMovesToTarget) {
  place(Situation::Local);
  Rev rev(system->client(self), "counter", target);
  (void)rev.bind();
  EXPECT_EQ(where(), target);
}

TEST_F(BehaviourFixture, RevRemoteAtTargetBecomesRpc) {
  place(Situation::RemoteAtTarget);
  Rev rev(system->client(self), "counter", target);
  auto h = rev.bind();
  EXPECT_EQ(system->stats().counter("rts.migrations"), 0);
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
}

TEST_F(BehaviourFixture, RevRemoteNotAtTargetMoves) {
  place(Situation::RemoteNotAtTarget);
  Rev rev(system->client(self), "counter", target);
  (void)rev.bind();
  EXPECT_EQ(where(), target);
}

TEST_F(BehaviourFixture, CodLocalBecomesLpc) {
  place(Situation::Local);
  Cod cod(system->client(self), "counter");
  auto h = cod.bind();
  EXPECT_EQ(system->stats().counter("rts.migrations"), 0);
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
  EXPECT_EQ(system->stats().counter("rts.local_invocations"), 1);
}

TEST_F(BehaviourFixture, CodRemotePullsLocal) {
  place(Situation::RemoteNotAtTarget);
  Cod cod(system->client(self), "counter");
  (void)cod.bind();
  EXPECT_EQ(where(), self);
}

TEST_F(BehaviourFixture, RpcLocalThrows) {
  place(Situation::Local);
  Rpc rpc(system->client(self), "counter", target);
  EXPECT_THROW((void)rpc.bind(), common::CoercionError);
  EXPECT_EQ(where(), self);  // nothing moved
}

TEST_F(BehaviourFixture, RpcAtTargetSucceeds) {
  place(Situation::RemoteAtTarget);
  Rpc rpc(system->client(self), "counter", target);
  EXPECT_NO_THROW((void)rpc.bind());
}

TEST_F(BehaviourFixture, RpcNotAtTargetThrows) {
  place(Situation::RemoteNotAtTarget);
  Rpc rpc(system->client(self), "counter", target);
  EXPECT_THROW((void)rpc.bind(), common::CoercionError);
}

TEST_F(BehaviourFixture, CleWorksInEverySituation) {
  for (auto situation : {Situation::Local, Situation::RemoteAtTarget,
                         Situation::RemoteNotAtTarget}) {
    auto fresh = make_logic_system(3);
    common::NodeId at = situation == Situation::Local
                            ? common::NodeId{1}
                            : (situation == Situation::RemoteAtTarget
                                   ? common::NodeId{2}
                                   : common::NodeId{3});
    fresh->client(at).create_component("counter", "Counter");
    Cle cle(fresh->client(common::NodeId{1}), "counter");
    auto h = cle.bind();
    EXPECT_EQ(h.location(), at) << situation_name(situation);
    EXPECT_EQ(fresh->stats().counter("rts.migrations"), 0);
  }
}

// "when a component's current location is the same as the target ... REV
// becomes RPC" (Section 3.3) — the equivalence the paper calls out.
TEST_F(BehaviourFixture, RevAtTargetIsEquivalentToRpc) {
  place(Situation::RemoteAtTarget);
  Rev rev(system->client(self), "counter", target);
  Rpc rpc(system->client(self), "counter", target);
  auto via_rev = rev.bind();
  auto via_rpc = rpc.bind();
  EXPECT_EQ(via_rev.location(), via_rpc.location());
  EXPECT_EQ(via_rev.invoke<std::int64_t>("increment"), 1);
  EXPECT_EQ(via_rpc.invoke<std::int64_t>("increment"), 2);  // same object
}

}  // namespace
}  // namespace mage::core
