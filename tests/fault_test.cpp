// Fault-injection tests: MAGE protocols must "recover from message loss"
// (Section 4.3).  We verify end-to-end correctness of finds, moves,
// invocations and locks under IID loss, and clean failures under partition.
#include <gtest/gtest.h>

#include "support/test_objects.hpp"

namespace mage::rts {
namespace {

using core::Cle;
using core::Grev;
using testing::make_logic_system;

struct FaultFixture : ::testing::Test {
  std::unique_ptr<MageSystem> system = make_logic_system(3);
  common::NodeId n1{1}, n2{2}, n3{3};
};

TEST_F(FaultFixture, InvocationSurvivesModerateLoss) {
  system->client(n2).create_component("counter", "Counter");
  system->network().set_loss_rate(0.25);
  auto& c1 = system->client(n1);
  common::NodeId cloc = common::kNoNode;
  for (int i = 1; i <= 20; ++i) {
    EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "increment"), i);
  }
  EXPECT_GT(system->stats().counter("rmi.retransmissions"), 0);
  // At-most-once held: the counter saw exactly 20 increments.
  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "get"), 20);
}

TEST_F(FaultFixture, MigrationSurvivesLoss) {
  system->client(n1).create_component("counter", "Counter");
  system->network().set_loss_rate(0.2);
  auto& c1 = system->client(n1);
  for (int round = 0; round < 5; ++round) {
    c1.move("counter", n2);
    c1.move("counter", n3);
    c1.move("counter", n1);
  }
  // Exactly one live copy after 15 lossy migrations.
  int copies = 0;
  for (auto node : system->nodes()) {
    if (system->server(node).registry().has_local("counter")) ++copies;
  }
  EXPECT_EQ(copies, 1);
  EXPECT_TRUE(c1.has_local("counter"));
}

TEST_F(FaultFixture, LookupChainSurvivesLoss) {
  auto& c1 = system->client(n1);
  c1.create_component("counter", "Counter", /*is_public=*/true);
  c1.move("counter", n2);
  system->client(n2).move("counter", n3);
  system->network().set_loss_rate(0.2);
  EXPECT_EQ(system->client(n1).find("counter"), n3);
}

TEST_F(FaultFixture, LockBracketSurvivesLoss) {
  system->client(n2).create_component("obj", "Counter", true);
  system->network().set_loss_rate(0.15);
  auto& c1 = system->client(n1);
  for (int i = 0; i < 5; ++i) {
    auto lock = c1.lock("obj", n2);
    common::NodeId cloc = n2;
    (void)c1.invoke<std::int64_t>(cloc, "obj", "increment");
    c1.unlock(lock);
  }
  common::NodeId cloc = n2;
  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "obj", "get"), 5);
}

TEST_F(FaultFixture, AttributeBindSurvivesLoss) {
  system->client(n2).create_component("counter", "Counter", true);
  system->network().set_loss_rate(0.2);
  Grev grev(system->client(n1), "counter", n3);
  auto h = grev.bind();
  EXPECT_EQ(h.location(), n3);
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
}

TEST_F(FaultFixture, PartitionFailsCleanly) {
  system->client(n2).create_component("counter", "Counter");
  system->network().set_partitioned(n1, n2, true);
  auto& c1 = system->client(n1);
  common::NodeId cloc = n2;
  EXPECT_THROW(
      (void)c1.invoke<std::int64_t>(cloc, "counter", "increment"),
      common::MageError);
  // Nothing was executed on the far side.
  system->network().set_partitioned(n1, n2, false);
  cloc = n2;
  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "get"), 0);
}

TEST_F(FaultFixture, HealedPartitionRecovers) {
  system->client(n2).create_component("counter", "Counter");
  system->network().set_partitioned(n1, n2, true);
  auto& c1 = system->client(n1);
  common::NodeId cloc = n2;
  EXPECT_THROW((void)c1.invoke<std::int64_t>(cloc, "counter", "increment"),
               common::MageError);
  system->network().set_partitioned(n1, n2, false);
  cloc = n2;
  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "increment"), 1);
}

// Loss-rate sweep: the system stays correct (if slower) as loss climbs.
class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, EndToEndCorrectUnderLoss) {
  auto system = make_logic_system(2, /*seed=*/1234);
  const common::NodeId n1{1}, n2{2};
  system->client(n1).create_component("counter", "Counter");
  system->network().set_loss_rate(GetParam());
  auto& c1 = system->client(n1);
  c1.move("counter", n2);
  common::NodeId cloc = n2;
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "increment"), i);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, LossSweep,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.3, 0.4));

TEST_F(FaultFixture, CleFindsObjectDespiteLossyChain) {
  auto& c1 = system->client(n1);
  c1.create_component("counter", "Counter", true);
  c1.move("counter", n2);
  system->client(n2).move("counter", n3);
  system->network().set_loss_rate(0.25);
  Cle cle(system->client(n1), "counter");
  auto h = cle.bind();
  EXPECT_EQ(h.location(), n3);
}

// --- scheduled faults (driver mode) ----------------------------------------
//
// The same partition-then-heal and loss-burst programs the sharded chaos
// harness (tests/chaos_test.cpp) replays at every worker count, here on
// the single-queue engine where entries apply at their exact simulated
// times: single-threaded and sharded fault behavior must be equivalent
// where it matters — at-most-once, nothing lost once connectivity
// returns, clean counter provenance.

TEST_F(FaultFixture, ScheduledLossBurstRecoversWithAtMostOnce) {
  system->client(n2).create_component("counter", "Counter");
  auto& sim = system->simulation();

  // 40% IID loss for 200 simulated ms; step into the burst window first so
  // the invokes below genuinely run under it (with the zero cost model an
  // un-dropped invoke completes in simulated microseconds).
  net::FaultSchedule schedule;
  schedule.loss_burst(sim.now() + 100, 0.4, 200'000);
  system->network().set_fault_schedule(std::move(schedule));
  sim.run_for(150);

  auto& c1 = system->client(n1);
  common::NodeId cloc = common::kNoNode;
  for (int i = 1; i <= 20; ++i) {
    EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "increment"), i);
  }
  // Ride past the burst's end so the restore entry applies too.
  sim.run_for(250'000);
  EXPECT_EQ(system->network().pending_fault_events(), 0u);
  EXPECT_GT(system->stats().counter("rmi.retransmissions"), 0);
  EXPECT_GT(system->stats().counter("net.messages_dropped_by_schedule"), 0);
  // At-most-once held through the burst: exactly 20 increments executed.
  cloc = common::kNoNode;
  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "get"), 20);
}

TEST_F(FaultFixture, ScheduledPartitionThenHealDeliversEverything) {
  system->client(n2).create_component("counter", "Counter");
  auto& sim = system->simulation();

  // Cut n1 <-> n2 for 300 simulated ms.  The synchronous invoke below is
  // issued INTO the partition: its request is dropped and retransmitted
  // until the scheduled heal, well inside the retry budget — no invoke is
  // lost forever once connectivity is restored.
  net::FaultSchedule schedule;
  schedule.partition_for(sim.now() + 100, n1, n2, 300'000);
  system->network().set_fault_schedule(std::move(schedule));
  sim.run_for(200);  // the cut is now in force

  auto& c1 = system->client(n1);
  common::NodeId cloc = n2;
  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "increment"), 1);
  // The call can only have completed after the heal.
  EXPECT_GE(sim.now(), 300'000);
  EXPECT_EQ(system->network().pending_fault_events(), 0u);
  EXPECT_EQ(system->network().link_epoch(n1, n2), 2);  // cut + heal
  EXPECT_GT(system->stats().counter("rmi.retransmissions"), 0);
  EXPECT_GT(system->stats().counter("net.messages_dropped_by_schedule"), 0);
  // Exactly one execution despite every retransmitted copy.
  cloc = n2;
  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "get"), 1);
  EXPECT_EQ(system->stats().counter("rmi.evicted_reexecutions"), 0);
}

TEST_F(FaultFixture, ScheduledFaultsLeaveAdHocMutatorsUsable) {
  // A drained schedule does not wedge the ad-hoc path: manual loss set
  // after the program ran still takes effect (provenance flips back, so
  // new drops are NOT counted as schedule-caused).
  auto& sim = system->simulation();
  net::FaultSchedule schedule;
  schedule.loss_burst(sim.now() + 100, 0.5, 1'000);
  system->network().set_fault_schedule(std::move(schedule));
  sim.run_for(2'000);
  EXPECT_EQ(system->network().pending_fault_events(), 0u);

  system->network().set_loss_rate(0.2);
  const auto before =
      system->stats().counter("net.messages_dropped_by_schedule");
  system->client(n2).create_component("counter", "Counter");
  auto& c1 = system->client(n1);
  common::NodeId cloc = common::kNoNode;
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "increment"), i);
  }
  EXPECT_EQ(system->stats().counter("net.messages_dropped_by_schedule"),
            before);
  EXPECT_GT(system->stats().counter("net.messages_dropped"), 0);
}

}  // namespace
}  // namespace mage::rts
