// Table 3 shape-regression tests.
//
// The benches print the numbers; these tests pin the paper's qualitative
// claims in CI form so a cost-model or protocol regression that flips
// "who wins" fails the suite even if every bench still runs.
#include <gtest/gtest.h>

#include "support/test_objects.hpp"

namespace mage::core {
namespace {

constexpr common::NodeId kClient{1};
constexpr common::NodeId kServer{2};

class TestObjectShape : public rts::MageObject {
 public:
  std::string class_name() const override { return "TestObject"; }
  void serialize(serial::Writer& w) const override { w.write_i64(v_); }
  void deserialize(serial::Reader& r) override { v_ = r.read_i64(); }
  std::int64_t increment() { return ++v_; }

 private:
  std::int64_t v_ = 0;
};

std::unique_ptr<rts::MageSystem> fresh() {
  auto system = std::make_unique<rts::MageSystem>(
      net::CostModel::jdk122_classic());
  system->add_node("client");
  system->add_node("server");
  rts::ClassBuilder<TestObjectShape>(system->world(), "TestObject", 2048)
      .method("increment", &TestObjectShape::increment);
  return system;
}

struct Cell {
  double single_ms;
  double amortized_ms;
};

template <typename Setup, typename Body>
Cell run_cell(Setup setup, Body body) {
  Cell cell{};
  {
    auto system = fresh();
    setup(*system);
    const auto t0 = system->simulation().now();
    body(*system, 0);
    cell.single_ms = common::to_ms(system->simulation().now() - t0);
  }
  {
    auto system = fresh();
    setup(*system);
    const auto t0 = system->simulation().now();
    for (int i = 0; i < 10; ++i) body(*system, i);
    cell.amortized_ms =
        common::to_ms(system->simulation().now() - t0) / 10.0;
  }
  return cell;
}

Cell java_rmi() {
  return run_cell(
      [](rts::MageSystem& system) {
        system.transport(kServer).register_service(
            "noop", [](common::NodeId, const serial::BufferChain&,
                       rmi::Replier replier) { replier.ok({}); });
      },
      [](rts::MageSystem& system, int) {
        (void)system.transport(kClient).call_sync(kServer, "noop", {});
      });
}

Cell mage_rmi() {
  return run_cell(
      [](rts::MageSystem& system) {
        system.client(kServer).create_component("o", "TestObject");
        system.server(kClient).registry().update_forward("o", kServer);
        system.warm_all();
      },
      [](rts::MageSystem& system, int) {
        Rpc rpc(system.client(kClient), "o", kServer);
        (void)rpc.bind().invoke<std::int64_t>("increment");
      });
}

Cell tcod() {
  return run_cell(
      [](rts::MageSystem& system) {
        system.install_class(kServer, "TestObject");
      },
      [](rts::MageSystem& system, int) {
        Cod cod(system.client(kClient), "TestObject", "o", kServer,
                FactoryMode::Factory);
        (void)cod.bind().invoke<std::int64_t>("increment");
      });
}

Cell trev() {
  return run_cell(
      [](rts::MageSystem& system) {
        system.install_class(kClient, "TestObject");
      },
      [](rts::MageSystem& system, int) {
        Rev rev(system.client(kClient), "TestObject", "o", kServer,
                FactoryMode::Factory);
        (void)rev.bind().invoke<std::int64_t>("increment");
      });
}

Cell ma() {
  return run_cell(
      [](rts::MageSystem& system) {
        for (int i = 0; i < 10; ++i) {
          system.client(kClient).create_component("a" + std::to_string(i),
                                                  "TestObject");
        }
      },
      [](rts::MageSystem& system, int i) {
        MAgent agent(system.client(kClient), "a" + std::to_string(i),
                     kServer);
        agent.bind().invoke_oneway("increment");
      });
}

struct Shape : ::testing::Test {
  static const Cell& java() {
    static Cell c = java_rmi();
    return c;
  }
  static const Cell& mage() {
    static Cell c = mage_rmi();
    return c;
  }
  static const Cell& cod() {
    static Cell c = tcod();
    return c;
  }
  static const Cell& rev() {
    static Cell c = trev();
    return c;
  }
  static const Cell& agent() {
    static Cell c = ma();
    return c;
  }
};

TEST_F(Shape, JavaRmiNearPaperValues) {
  EXPECT_NEAR(java().single_ms, 33, 5);
  EXPECT_NEAR(java().amortized_ms, 20, 3);
}

TEST_F(Shape, MageRmiIsThinWrapper) {
  EXPECT_GT(mage().amortized_ms, java().amortized_ms);
  EXPECT_LT(mage().amortized_ms, java().amortized_ms * 1.4);
  EXPECT_NEAR(mage().single_ms, 34, 5);
}

TEST_F(Shape, TcodSingleIsTwoRmiSingles) {
  EXPECT_NEAR(cod().single_ms, 66, 10);
  EXPECT_GT(cod().single_ms, 1.7 * mage().single_ms);
}

TEST_F(Shape, TcodAmortizedIsOneRmi) {
  EXPECT_NEAR(cod().amortized_ms, 22, 5);
}

TEST_F(Shape, TrevIsFourRmiCalls) {
  EXPECT_NEAR(rev().amortized_ms, 82, 9);
  EXPECT_GT(rev().amortized_ms, 3.2 * java().amortized_ms);
  EXPECT_LT(rev().amortized_ms, 4.8 * java().amortized_ms);
  EXPECT_NEAR(rev().single_ms, 130, 16);
}

TEST_F(Shape, MaIsThreeRmiCalls) {
  EXPECT_NEAR(agent().amortized_ms, 63, 8);
  EXPECT_GT(agent().amortized_ms, 2.4 * java().amortized_ms);
  EXPECT_LT(agent().amortized_ms, 3.6 * java().amortized_ms);
  EXPECT_NEAR(agent().single_ms, 110, 14);
}

TEST_F(Shape, OrderingMatchesPaper) {
  // Amortized: RMI < TCOD? The paper has TCOD (22) < MAGE RMI (23); either
  // way both sit within a couple ms of one RMI call, far below TREV/MA.
  EXPECT_LT(cod().amortized_ms, agent().amortized_ms);
  EXPECT_LT(agent().amortized_ms, rev().amortized_ms);
  EXPECT_LT(mage().amortized_ms, agent().amortized_ms);
  // Singles: RMI < TCOD < MA < TREV.
  EXPECT_LT(mage().single_ms, cod().single_ms);
  EXPECT_LT(cod().single_ms, agent().single_ms);
  EXPECT_LT(agent().single_ms, rev().single_ms);
}

TEST_F(Shape, ColdAlwaysCostsMoreThanWarm) {
  for (const Cell* cell :
       {&java(), &mage(), &cod(), &rev(), &agent()}) {
    EXPECT_GT(cell->single_ms, cell->amortized_ms);
  }
}

}  // namespace
}  // namespace mage::core
