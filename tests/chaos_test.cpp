// Deterministic chaos: scheduled fault injection on the sharded engine,
// proven replayable from a single seed.
//
// The property under test (ISSUE 5): with a net::FaultSchedule applied at
// ShardedSim window boundaries, one seed yields a bit-identical run —
// including every loss decision, drop, retransmission and re-delivery —
// at ANY worker-thread count, while the RMI/rts guarantees (at-most-once,
// per-link FIFO, no invoke lost once connectivity returns) hold
// throughout.  The harness lives in tests/support/chaos_harness.hpp;
// bench_storm --chaos re-runs the same machinery at bench scale.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "rmi/envelope.hpp"
#include "rts/directory.hpp"
#include "rts/protocol.hpp"
#include "rts/server.hpp"
#include "support/chaos_harness.hpp"

namespace mage {
namespace {

namespace proto = rts::proto;
using testing::ChaosParams;
using testing::ChaosRun;
using testing::chaos_model;
using testing::random_fault_schedule;
using testing::run_chaos_storm;

// The acceptance seeds: three distinct chaos programs, each guaranteed to
// contain a loss burst, a partition/heal pair, and a crash/restart.
const std::uint64_t kSeeds[] = {0xA1, 0xB2C3, 0xDEADBEEF};

TEST(ChaosSchedule, EverySeedContainsTheMandatoryFaultKinds) {
  for (const std::uint64_t seed : kSeeds) {
    const net::FaultSchedule schedule =
        random_fault_schedule(seed, ChaosParams{});
    int loss_changes = 0, partitions = 0, heals = 0, crashes = 0,
        restarts = 0;
    for (const net::FaultEvent& e : schedule.events()) {
      switch (e.kind) {
        case net::FaultKind::LossRate: ++loss_changes; break;
        case net::FaultKind::Partition: ++partitions; break;
        case net::FaultKind::Heal: ++heals; break;
        case net::FaultKind::Crash: ++crashes; break;
        case net::FaultKind::Restart: ++restarts; break;
      }
    }
    // A burst is a raise + a restore.
    EXPECT_GE(loss_changes, 2) << "seed " << seed;
    EXPECT_GE(partitions, 1) << "seed " << seed;
    EXPECT_EQ(heals, partitions) << "seed " << seed;
    EXPECT_EQ(crashes, 1) << "seed " << seed;
    EXPECT_EQ(restarts, 1) << "seed " << seed;
    // And the generator is itself deterministic.
    const net::FaultSchedule again =
        random_fault_schedule(seed, ChaosParams{});
    ASSERT_EQ(schedule.size(), again.size());
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      EXPECT_EQ(schedule.events()[i].at, again.events()[i].at);
      EXPECT_EQ(schedule.events()[i].kind, again.events()[i].kind);
    }
  }
}

// Asserts the semantic chaos properties on one run: liveness (everything
// completed, nothing failed), at-most-once via execution counters, FIFO
// via the wire self-check, and a fully applied schedule.
void expect_chaos_invariants(const ChaosRun& run, std::uint64_t seed,
                             int threads) {
  SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
               std::to_string(threads));
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.failed_calls, 0);                // (d) nothing lost forever
  EXPECT_TRUE(run.every_invoke_exactly_once());  // (b) at-most-once + liveness
  EXPECT_EQ(run.fifo_violations, 0);             // (c) per-link FIFO
  EXPECT_EQ(run.evicted_reexecutions, 0);  // adequately sized reply cache
  EXPECT_EQ(run.pending_fault_events, 0);  // the whole program applied
  // The run was genuinely chaotic: scheduled faults dropped messages and
  // forced retransmissions that were then deduplicated.
  EXPECT_GT(run.faults_applied, 4);
  EXPECT_GT(run.messages_dropped_by_schedule, 0);
  EXPECT_GT(run.retransmissions, 0);
  EXPECT_GT(run.duplicates_suppressed, 0);
}

TEST(ChaosStorm, SeedReplaysBitIdenticallyAt1_2_8Workers) {
  for (const std::uint64_t seed : kSeeds) {
    const ChaosRun one = run_chaos_storm(seed, 1);
    const ChaosRun two = run_chaos_storm(seed, 2);
    const ChaosRun eight = run_chaos_storm(seed, 8);
    expect_chaos_invariants(one, seed, 1);
    expect_chaos_invariants(two, seed, 2);
    expect_chaos_invariants(eight, seed, 8);
    // (a) determinism: identical per-node digests (execution order AND
    // shard-local timestamps) at every worker count — the faults included.
    EXPECT_EQ(one.node_digests, two.node_digests) << "seed " << seed;
    EXPECT_EQ(one.node_digests, eight.node_digests) << "seed " << seed;
    // The whole counter picture replays too, not just the digests.
    EXPECT_EQ(one.retransmissions, two.retransmissions);
    EXPECT_EQ(one.retransmissions, eight.retransmissions);
    EXPECT_EQ(one.messages_dropped, two.messages_dropped);
    EXPECT_EQ(one.messages_dropped, eight.messages_dropped);
    EXPECT_EQ(one.duplicates_suppressed, eight.duplicates_suppressed);
  }
}

TEST(ChaosStorm, DifferentSeedsProduceDifferentChaos) {
  const ChaosRun a = run_chaos_storm(kSeeds[0], 2);
  const ChaosRun b = run_chaos_storm(kSeeds[1], 2);
  EXPECT_NE(a.node_digests, b.node_digests);
}

// The same workload + schedule on the single-queue driver engine: faults
// apply at exact times instead of window boundaries, but every semantic
// property must hold identically — single-threaded and sharded fault
// behavior are equivalent where it matters.
TEST(ChaosStorm, DriverEngineHoldsTheSameProperties) {
  for (const std::uint64_t seed : kSeeds) {
    const ChaosRun run = run_chaos_storm(seed, /*threads=*/0);
    expect_chaos_invariants(run, seed, 0);
  }
}

TEST(FaultSchedule, DriverModeAppliesEntriesAtExactTimes) {
  sim::Simulation sim(7);
  net::Network net(sim, chaos_model());
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");

  net::FaultSchedule schedule;
  schedule.loss_burst(1'000, 0.5, 2'000);     // loss 0.5 in [1ms, 3ms)
  schedule.partition_for(2'000, a, b, 1'500); // cut in [2ms, 3.5ms)
  schedule.crash_for(4'000, b, 1'000);        // down in [4ms, 5ms)
  net.set_fault_schedule(std::move(schedule));
  EXPECT_EQ(net.pending_fault_events(), 6u);

  sim.run_until([&] { return false; }, 999);  // t < first entry
  EXPECT_EQ(net.pending_fault_events(), 6u);
  sim.run_until([&] { return false; }, 2'500);
  EXPECT_EQ(net.pending_fault_events(), 4u);  // burst start + partition in
  EXPECT_TRUE(net.node_down(b) == false);
  sim.run_until([&] { return false; }, 4'500);
  EXPECT_EQ(net.pending_fault_events(), 1u);  // only the restart left
  EXPECT_TRUE(net.node_down(b));
  sim.run_until([&] { return false; }, 6'000);
  EXPECT_EQ(net.pending_fault_events(), 0u);
  EXPECT_FALSE(net.node_down(b));
  // Every link transition bumped the epoch: the partition's cut and heal,
  // plus b's crash and restart (a restarted endpoint resets its wire_seq
  // counters, so the FIFO self-check re-anchors on the new epoch).
  EXPECT_EQ(net.link_epoch(a, b), 4);
  EXPECT_EQ(sim.stats().counter("net.faults_applied"), 6);
}

TEST(FaultSchedule, ValidatesItsInputs) {
  EXPECT_THROW(net::FaultSchedule().loss_rate(0, 1.5), common::MageError);
  EXPECT_THROW(net::FaultSchedule().loss_burst(0, -0.1, 100),
               common::MageError);
  EXPECT_THROW(net::FaultSchedule().partition(0, common::NodeId{1},
                                              common::NodeId{1}),
               common::MageError);
  EXPECT_THROW(net::FaultSchedule().crash_for(0, common::NodeId{1}, 0),
               common::MageError);

  // Entries naming nodes not on the network are rejected at install.
  sim::Simulation sim(7);
  net::Network net(sim, chaos_model());
  (void)net.add_node("only");
  net::FaultSchedule schedule;
  schedule.crash(10, common::NodeId{9});
  EXPECT_THROW(net.set_fault_schedule(std::move(schedule)),
               common::MageError);
}

TEST(FaultSchedule, ReplacedScheduleCancelsItsDriverAppliers) {
  sim::Simulation sim(7);
  net::Network net(sim, chaos_model());
  (void)net.add_node("a");
  (void)net.add_node("b");
  net::FaultSchedule first;
  first.loss_rate(1'000, 0.5);
  net.set_fault_schedule(std::move(first));
  net::FaultSchedule second;
  second.loss_rate(2'000, 0.25);
  net.set_fault_schedule(std::move(second));
  sim.run_for(5'000);
  // Only the replacement applied; the first schedule's appliers were
  // cancelled, not merely neutered.
  EXPECT_EQ(sim.stats().counter("net.faults_applied"), 1);
  EXPECT_EQ(net.pending_fault_events(), 0u);
}

TEST(FaultSchedule, NetworkTeardownCancelsDriverAppliers) {
  sim::Simulation sim(7);
  {
    net::Network net(sim, chaos_model());
    (void)net.add_node("a");
    net::FaultSchedule schedule;
    schedule.crash_for(1'000, common::NodeId{1}, 1'000);
    net.set_fault_schedule(std::move(schedule));
  }
  // The appliers captured the destroyed network; they must be gone
  // (use-after-free under ASan otherwise).
  sim.run_until_idle();
  SUCCEED();
}

TEST(FaultSchedule, TeardownLeavesANewerNetworksHookInstalled) {
  const net::CostModel model = chaos_model();
  sim::ShardedSim ssim(2, 7, net::Network::min_link_latency(model));
  auto old_net = std::make_unique<net::Network>(ssim, model);
  (void)old_net->add_node("a");
  net::FaultSchedule s1;
  s1.loss_rate(10, 0.1);
  old_net->set_fault_schedule(std::move(s1));

  auto new_net = std::make_unique<net::Network>(ssim, model);
  (void)new_net->add_node("a");
  net::FaultSchedule s2;
  s2.loss_rate(10, 0.2);
  new_net->set_fault_schedule(std::move(s2));

  // Destroying the old network must not disarm the hook the new one owns.
  old_net.reset();
  EXPECT_EQ(ssim.boundary_hook_owner(),
            static_cast<const void*>(new_net.get()));
  // And the new network's own teardown clears it.
  new_net.reset();
  EXPECT_EQ(ssim.boundary_hook_owner(), nullptr);
}

// Satellite fix: the ad-hoc fault mutators on a running sharded mesh must
// point at FaultSchedule, not a generic threading-contract error.
TEST(FaultSchedule, MidRunMutatorsPointAtFaultSchedule) {
  const net::CostModel model = chaos_model();
  sim::ShardedSim ssim(2, 7, net::Network::min_link_latency(model));
  net::Network net(ssim, model);
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");

  for (int which = 0; which < 3; ++which) {
    ssim.shard(0).schedule_after(10, [&net, a, b, which] {
      if (which == 0) net.set_loss_rate(0.5);
      if (which == 1) net.set_partitioned(a, b, true);
      if (which == 2) net.set_node_down(b, true);
    });
    try {
      ssim.run_until_idle(2);
      FAIL() << "mutator " << which << " did not throw mid-run";
    } catch (const common::MageError& e) {
      EXPECT_NE(std::string(e.what()).find("FaultSchedule"),
                std::string::npos)
          << "mutator " << which << " error does not mention FaultSchedule: "
          << e.what();
    }
  }
  // Stopped again: ad-hoc mutation reopens.
  EXPECT_NO_THROW(net.set_loss_rate(0.0));
  EXPECT_NO_THROW(net.set_partitioned(a, b, false));
}

TEST(FaultSchedule, InstallIsFrozenMidRun) {
  const net::CostModel model = chaos_model();
  sim::ShardedSim ssim(2, 7, net::Network::min_link_latency(model));
  net::Network net(ssim, model);
  (void)net.add_node("a");
  (void)net.add_node("b");
  ssim.shard(0).schedule_after(10, [&net] {
    net.set_fault_schedule(net::FaultSchedule());
  });
  EXPECT_THROW(ssim.run_until_idle(2), common::MageError);
}

// Satellite: eviction-caused re-executions are surfaced as a dedicated
// counter.  A retransmission that arrives after its at-most-once entry was
// evicted from an undersized reply cache re-executes the service — the
// counter records exactly that, and nothing else.
TEST(Transport, EvictionCausedReexecutionIsCounted) {
  sim::Simulation sim(7);
  net::Network net(sim, chaos_model());
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  rmi::Transport ta(net, a);
  // Capacity 1: the second request evicts the first's cached reply.
  rmi::Transport tb(net, b, /*reply_cache_capacity=*/1);

  int executions = 0;
  const common::VerbId verb = common::intern_verb("chaos.count");
  tb.register_service(verb, [&executions](common::NodeId,
                                          const serial::BufferChain&,
                                          rmi::Replier replier) {
    ++executions;
    replier.ok({});
  });

  (void)ta.call_sync(b, verb, {});  // request id 1: executes, cached
  (void)ta.call_sync(b, verb, {});  // request id 2: executes, evicts id 1
  EXPECT_EQ(executions, 2);
  EXPECT_EQ(sim.stats().counter("rmi.reply_cache_evictions"), 1);
  EXPECT_EQ(sim.stats().counter("rmi.evicted_reexecutions"), 0);

  // Hand-craft a retransmission of request 1 (its cache entry is gone).
  auto retransmit = [&](std::uint64_t request_id) {
    rmi::Envelope env;
    env.kind = rmi::EnvelopeKind::Request;
    env.request_id = common::RequestId{request_id};
    env.verb = verb;
    net.send(net::Message{a, b, verb, net::MsgKind::Request,
                          env.encode_header(), env.body});
    sim.run_until_idle();
  };
  retransmit(1);
  EXPECT_EQ(executions, 3);  // re-executed: at-most-once broken by eviction
  EXPECT_EQ(sim.stats().counter("rmi.evicted_reexecutions"), 1);

  // A duplicate whose entry is STILL cached is suppressed, not counted:
  // the re-execution just re-cached id 1, so another copy of it is
  // answered from the cache without touching the service or the counter.
  const auto dups_before = sim.stats().counter("rmi.duplicates_suppressed");
  retransmit(1);
  EXPECT_EQ(executions, 3);
  EXPECT_EQ(sim.stats().counter("rmi.evicted_reexecutions"), 1);
  EXPECT_GT(sim.stats().counter("rmi.duplicates_suppressed"), dups_before);
}

// --- rts layer: migration racing a scheduled partition ---------------------

constexpr common::SimDuration kWorkCostUs = 100;

class Session : public rts::MageObject {
 public:
  std::string class_name() const override { return "Session"; }
  void serialize(serial::Writer& w) const override { w.write_i64(served_); }
  void deserialize(serial::Reader& r) override { served_ = r.read_i64(); }
  std::int64_t work() { return ++served_; }

 private:
  std::int64_t served_ = 0;
};

struct RtsRaceResult {
  std::int64_t completions = 0;
  std::int64_t redirects = 0;
  std::int64_t migrations = 0;
  int copies = 0;
  bool on_destination = false;
  bool move_ok = false;

  bool operator==(const RtsRaceResult&) const = default;
};

// A `mage.move` n1 -> n2 races a scheduled partition of exactly that link
// while a generator on n4 keeps invoking the object, chasing Moved hints
// through the in-transit window.  After the heal the transfer's
// retransmission must land the object on n2 exactly once, with every
// invoke eventually served.
RtsRaceResult run_rts_partition_race(int threads) {
  const net::CostModel model = chaos_model();
  constexpr int kNodes = 4;
  constexpr std::int64_t kInvokes = 25;
  sim::ShardedSim ssim(kNodes, /*seed=*/0x5EED,
                       net::Network::min_link_latency(model));
  net::Network net(ssim, model);

  rts::ClassWorld world;
  rts::ClassBuilder<Session>(world, "Session").method("work", &Session::work,
                                                      kWorkCostUs);
  rts::Directory directory;

  std::vector<common::NodeId> ids;
  for (int i = 0; i < kNodes; ++i) {
    ids.push_back(net.add_node("n" + std::to_string(i)));
  }
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  std::vector<std::unique_ptr<rts::MageServer>> servers;
  for (int i = 0; i < kNodes; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
    servers.push_back(
        std::make_unique<rts::MageServer>(*transports[i], world, directory));
    servers[i]->class_cache().install("Session");
  }

  rts::ComponentInfo info;
  info.name = "sess";
  info.class_name = "Session";
  info.home = ids[0];
  info.is_public = true;
  directory.announce(info);
  servers[0]->registry().bind("sess", world.instantiate("Session"));

  // The partition cuts exactly the migration's transfer link, before the
  // move is issued, and heals while the transfer is still retrying.
  net::FaultSchedule schedule;
  schedule.partition_for(1'000, ids[0], ids[1], 20'000);
  net.set_fault_schedule(std::move(schedule));

  // Generator on n4: windowed invokes chasing Moved hints (the client-stub
  // protocol, as in examples/storm_balancer.cpp).
  struct Gen {
    std::int64_t issued = 0;
    std::int64_t completed = 0;
    std::int64_t redirects = 0;
    common::NodeId believed;
  } gen;
  gen.believed = ids[0];
  std::function<void()> invoke_obj = [&] {
    proto::InvokeRequest request;
    request.name = "sess";
    request.method = "work";
    transports[3]->call(
        gen.believed, proto::verbs::kInvoke, request.encode(),
        [&](rmi::CallResult result) {
          if (!result.ok) {
            throw common::MageError("invoke transport failure: " +
                                    result.error);
          }
          auto reply = proto::InvokeReply::decode(result.body);
          if (reply.status == proto::Status::Moved &&
              reply.hint != common::kNoNode) {
            ++gen.redirects;
            gen.believed = reply.hint;
            invoke_obj();
            return;
          }
          if (reply.status != proto::Status::Ok) {
            ++gen.redirects;
            gen.believed = ids[0];  // chain lost mid-transfer: restart home
            invoke_obj();
            return;
          }
          ++gen.completed;
          if (gen.issued < kInvokes) {
            ++gen.issued;
            invoke_obj();
          }
        });
  };
  for (int w = 0; w < 2 && gen.issued < kInvokes; ++w) {
    ++gen.issued;
    invoke_obj();
  }

  // The racing move, issued from n3's shard 1.5ms in — inside the
  // partition window, so the n1 -> n2 transfer must survive the cut.
  bool move_done = false;
  bool move_ok = false;
  net.node_sim(ids[2]).schedule_at(1'500, [&] {
    proto::MoveRequest request;
    request.name = "sess";
    request.to = ids[1];
    transports[2]->call(ids[0], proto::verbs::kMove, request.encode(),
                        [&](rmi::CallResult r) {
                          move_done = true;
                          move_ok = r.ok;
                        });
  });

  const bool done = ssim.run_until(
      [&] {
        return move_done && gen.completed == kInvokes &&
               net.pending_fault_events() == 0;
      },
      threads, /*deadline=*/60'000'000);
  EXPECT_TRUE(done);

  RtsRaceResult result;
  result.completions = gen.completed;
  result.redirects = gen.redirects;
  result.migrations = ssim.counter("rts.migrations");
  for (int i = 0; i < kNodes; ++i) {
    if (servers[i]->registry().has_local("sess")) ++result.copies;
  }
  result.on_destination = servers[1]->registry().has_local("sess");
  result.move_ok = move_ok;
  return result;
}

TEST(ChaosRts, MigrationRacingAPartitionIsExactlyOnceAndDeterministic) {
  const RtsRaceResult one = run_rts_partition_race(1);
  const RtsRaceResult two = run_rts_partition_race(2);
  const RtsRaceResult four = run_rts_partition_race(4);

  // Exactly one live copy, on the move's destination, move acknowledged.
  EXPECT_EQ(one.copies, 1);
  EXPECT_TRUE(one.on_destination);
  EXPECT_TRUE(one.move_ok);
  EXPECT_EQ(one.migrations, 1);
  EXPECT_EQ(one.completions, 25);
  // The generator really chased hints through the in-transit window.
  EXPECT_GT(one.redirects, 0);
  // And the whole race replays identically at any worker count.
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

}  // namespace
}  // namespace mage
