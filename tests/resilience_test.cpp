// Crash-fault tests and tooling tests: node-down semantics, trace charts,
// agent missions, and assorted adversarial edges (forward cycles, envelope
// fuzz, in-transit lookups).
#include <gtest/gtest.h>

#include "net/trace_chart.hpp"
#include "support/test_objects.hpp"

namespace mage::rts {
namespace {

using core::AgentMission;
using core::Cle;
using testing::make_logic_system;

// --- node crashes ---------------------------------------------------------------

struct CrashFixture : ::testing::Test {
  std::unique_ptr<MageSystem> system = make_logic_system(3);
  common::NodeId n1{1}, n2{2}, n3{3};
};

TEST_F(CrashFixture, InvokingACrashedHostTimesOut) {
  system->client(n2).create_component("obj", "Counter");
  system->network().set_node_down(n2, true);
  common::NodeId cloc = n2;
  EXPECT_THROW((void)system->client(n1).invoke<std::int64_t>(cloc, "obj",
                                                             "increment"),
               common::MageError);
}

TEST_F(CrashFixture, RestartRestoresService) {
  system->client(n2).create_component("obj", "Counter");
  system->network().set_node_down(n2, true);
  common::NodeId cloc = n2;
  EXPECT_THROW((void)system->client(n1).invoke<std::int64_t>(cloc, "obj",
                                                             "increment"),
               common::MageError);
  system->network().set_node_down(n2, false);
  cloc = n2;
  // MAGE objects are not replicated: the object survived because the node
  // "rebooted" with its memory intact in this simulation; the point is the
  // transport recovers cleanly.
  EXPECT_EQ(system->client(n1).invoke<std::int64_t>(cloc, "obj", "increment"),
            1);
}

TEST_F(CrashFixture, CrashMidTransferDoesNotDuplicateTheObject) {
  system->client(n1).create_component("obj", "Counter");
  // Crash the destination; the move fails; the object must still be at n1
  // and exactly one copy must exist.
  system->network().set_node_down(n2, true);
  EXPECT_THROW(system->client(n1).transfer_out("obj", n2),
               common::MageError);
  int copies = 0;
  for (auto node : system->nodes()) {
    if (system->server(node).registry().has_local("obj")) ++copies;
  }
  EXPECT_EQ(copies, 1);
  EXPECT_TRUE(system->client(n1).has_local("obj"));
}

TEST_F(CrashFixture, LookupThroughCrashedChainFails) {
  auto& c1 = system->client(n1);
  c1.create_component("obj", "Counter", /*is_public=*/true);
  c1.move("obj", n2);
  system->client(n2).move("obj", n3);
  // n2 holds the middle of the chain; kill it and drop n1's shortcut so the
  // walk must go through the dead node.
  system->server(n1).registry().update_forward("obj", n2);
  system->network().set_node_down(n2, true);
  EXPECT_THROW((void)c1.find("obj"), common::MageError);
}

TEST_F(CrashFixture, NodeDownFlagQueryable) {
  EXPECT_FALSE(system->network().node_down(n1));
  system->network().set_node_down(n1, true);
  EXPECT_TRUE(system->network().node_down(n1));
}

// --- scheduled crash/restart (driver mode) ---------------------------------
//
// Mirrors the chaos harness's crash/restart program on the single-queue
// engine: a call issued INTO the outage must ride its retransmissions
// through the restart and execute exactly once — the sharded chaos tests
// assert the same property at every worker count.

TEST_F(CrashFixture, ScheduledCrashRestartRecoversInFlightCalls) {
  system->client(n2).create_component("obj", "Counter");
  auto& sim = system->simulation();

  net::FaultSchedule schedule;
  schedule.crash_for(sim.now() + 100, n2, 400'000);  // down for 400 ms
  system->network().set_fault_schedule(std::move(schedule));
  sim.run_for(200);
  EXPECT_TRUE(system->network().node_down(n2));

  // Issued while n2 is down; completes only after the scheduled restart.
  common::NodeId cloc = n2;
  EXPECT_EQ(system->client(n1).invoke<std::int64_t>(cloc, "obj", "increment"),
            1);
  EXPECT_GE(sim.now(), 400'000);
  EXPECT_FALSE(system->network().node_down(n2));
  EXPECT_EQ(system->network().pending_fault_events(), 0u);
  EXPECT_GT(system->stats().counter("rmi.retransmissions"), 0);
  EXPECT_GT(system->stats().counter("net.messages_dropped_by_schedule"), 0);
  // Exactly one execution despite every dropped/retransmitted copy.
  cloc = n2;
  EXPECT_EQ(system->client(n1).invoke<std::int64_t>(cloc, "obj", "get"), 1);
}

TEST_F(CrashFixture, ScheduledCrashOutlastingRetriesFailsCleanly) {
  system->client(n2).create_component("obj", "Counter");
  auto& sim = system->simulation();

  // Down for longer than the whole retry budget (24 x 150 ms): the caller
  // gets a clean transport error, and a fresh call after the scheduled
  // restart succeeds — the object survived the simulated reboot.
  net::FaultSchedule schedule;
  schedule.crash_for(sim.now() + 100, n2, 5'000'000);
  system->network().set_fault_schedule(std::move(schedule));
  sim.run_for(200);

  common::NodeId cloc = n2;
  EXPECT_THROW((void)system->client(n1).invoke<std::int64_t>(cloc, "obj",
                                                             "increment"),
               common::MageError);
  sim.run_for(6'000'000);  // ride past the scheduled restart
  EXPECT_FALSE(system->network().node_down(n2));
  cloc = n2;
  EXPECT_EQ(system->client(n1).invoke<std::int64_t>(cloc, "obj", "increment"),
            1);
}

// --- agent missions -----------------------------------------------------------------

TEST(Mission, VisitsEveryStopAndAccumulates) {
  auto system = make_logic_system(4);
  auto& client = system->client(common::NodeId{1});
  client.create_component("gatherer", "Counter");

  AgentMission mission(client, "gatherer",
                       {common::NodeId{2}, common::NodeId{3},
                        common::NodeId{4}},
                       "increment");
  auto stops = mission.run();
  ASSERT_EQ(stops.size(), 3u);
  // The counter travels with the agent: one increment per stop.
  EXPECT_EQ(AgentMission::result_of<std::int64_t>(stops[0]), 1);
  EXPECT_EQ(AgentMission::result_of<std::int64_t>(stops[1]), 2);
  EXPECT_EQ(AgentMission::result_of<std::int64_t>(stops[2]), 3);
  EXPECT_EQ(stops[0].node, common::NodeId{2});
  EXPECT_EQ(stops[2].node, common::NodeId{4});
}

TEST(Mission, ArgumentsReachEveryStop) {
  auto system = make_logic_system(3);
  auto& client = system->client(common::NodeId{1});
  client.create_component("adder", "Counter");
  AgentMission mission(client, "adder",
                       {common::NodeId{2}, common::NodeId{3}}, "add");
  auto stops = mission.run(std::int64_t{10});
  EXPECT_EQ(AgentMission::result_of<std::int64_t>(stops[0]), 10);
  EXPECT_EQ(AgentMission::result_of<std::int64_t>(stops[1]), 20);
}

TEST(Mission, AgentEndsAtLastStop) {
  auto system = make_logic_system(3);
  auto& client = system->client(common::NodeId{1});
  client.create_component("roamer", "Counter");
  AgentMission mission(client, "roamer",
                       {common::NodeId{2}, common::NodeId{3}}, "increment");
  (void)mission.run();
  EXPECT_TRUE(
      system->server(common::NodeId{3}).registry().has_local("roamer"));
}

// --- trace chart -----------------------------------------------------------------------

TEST(TraceChart, RendersArrowsBetweenLifelines) {
  auto system = make_logic_system(2);
  system->network().set_tracing(true);
  system->client(common::NodeId{1}).create_component("obj", "Counter");
  system->client(common::NodeId{1}).move("obj", common::NodeId{2});

  const auto chart = net::render_sequence_chart(
      system->network(), system->network().trace(),
      {common::NodeId{1}, common::NodeId{2}});
  EXPECT_NE(chart.find("n1"), std::string::npos);
  EXPECT_NE(chart.find("n2"), std::string::npos);
  EXPECT_NE(chart.find(">"), std::string::npos);
  EXPECT_NE(chart.find("transfer"), std::string::npos);
}

TEST(TraceChart, MarksDrops) {
  auto system = make_logic_system(2);
  system->network().set_tracing(true);
  system->network().set_partitioned(common::NodeId{1}, common::NodeId{2},
                                    true);
  net::Message msg{common::NodeId{1},      common::NodeId{2},
                   common::intern_verb("doomed"), net::MsgKind::Request,
                   {},                      {}};
  system->network().send(msg);
  const auto chart = net::render_sequence_chart(
      system->network(), system->network().trace(),
      {common::NodeId{1}, common::NodeId{2}});
  EXPECT_NE(chart.find("LOST"), std::string::npos);
}

TEST(TraceChart, CanFilterReplies) {
  auto system = make_logic_system(2);
  system->network().set_tracing(true);
  system->client(common::NodeId{2}).create_component("obj", "Counter");
  common::NodeId cloc{2};
  (void)system->client(common::NodeId{1})
      .invoke<std::int64_t>(cloc, "obj", "increment");
  net::TraceChartOptions options;
  options.include_replies = false;
  const auto chart = net::render_sequence_chart(
      system->network(), system->network().trace(),
      {common::NodeId{1}, common::NodeId{2}}, options);
  EXPECT_EQ(chart.find(".reply"), std::string::npos);
}

// --- adversarial edges ---------------------------------------------------------------------

TEST(Adversarial, ForwardCycleIsDetected) {
  auto system = make_logic_system(3);
  const common::NodeId n1{1}, n2{2}, n3{3};
  // Manufacture a corrupt forwarding cycle: n2 -> n3 -> n2 with no object
  // anywhere, reachable from n1's directory knowledge.
  system->client(n1).create_component("ghost", "Counter",
                                      /*is_public=*/true);
  auto departed = system->server(n1).registry().unbind("ghost");
  departed.reset();
  system->server(n1).registry().update_forward("ghost", n2);
  system->server(n2).registry().update_forward("ghost", n3);
  system->server(n3).registry().update_forward("ghost", n2);
  EXPECT_THROW((void)system->client(n1).find("ghost"),
               common::NotFoundError);
}

TEST(Adversarial, EnvelopeFuzzNeverCrashes) {
  common::Rng rng(2024);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    try {
      auto env = rmi::Envelope::decode(serial::Buffer(std::move(junk)));
      (void)env;
    } catch (const common::SerializationError&) {
      // Expected for most inputs; anything else would fail the test.
    }
  }
  SUCCEED();
}

TEST(Adversarial, ProtocolBodyFuzzNeverCrashes) {
  common::Rng rng(7777);
  for (int round = 0; round < 1000; ++round) {
    std::vector<std::uint8_t> junk(rng.next_below(48));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    const serial::Buffer junk_buf(std::move(junk));
    auto probe = [&junk_buf](auto decode) {
      try {
        (void)decode(junk_buf);
      } catch (const common::SerializationError&) {
      }
    };
    probe([](const auto& b) { return proto::LookupRequest::decode(b); });
    probe([](const auto& b) { return proto::InvokeRequest::decode(b); });
    probe([](const auto& b) { return proto::TransferRequest::decode(b); });
    probe([](const auto& b) { return proto::LockRequest::decode(b); });
    probe([](const auto& b) { return proto::ClassImage::decode(b); });
  }
  SUCCEED();
}

TEST(Adversarial, LookupDuringTransitEventuallyConverges) {
  auto system = make_logic_system(3);
  const common::NodeId n1{1}, n2{2}, n3{3};
  system->client(n1).create_component("obj", "Counter", /*is_public=*/true);

  // Start a move n1 -> n2 asynchronously (raw protocol, no sync wait).
  proto::MoveRequest request;
  request.name = "obj";
  request.to = n2;
  bool move_done = false;
  system->transport(n3).call(
      n1, proto::verbs::kMove, request.encode(),
      [&move_done](rmi::CallResult) { move_done = true; });

  // Wait until the object is genuinely mid-flight, then look it up from a
  // third party; the client-side chase follows the in-transit hint and
  // retries until the object lands.
  ASSERT_TRUE(system->simulation().run_until(
      [&] { return system->server(n1).in_transit("obj"); }));
  EXPECT_EQ(system->client(n3).find("obj"), n2);
  system->simulation().run_until([&move_done] { return move_done; });
}

TEST(Adversarial, ConcurrentMovesNeverCloneTheObject) {
  auto system = make_logic_system(4);
  const common::NodeId n1{1};
  system->client(n1).create_component("obj", "Counter", /*is_public=*/true);

  // Fire two conflicting move requests at the host back to back (no lock
  // bracket — the structural guarantee must hold anyway).
  for (auto to : {common::NodeId{2}, common::NodeId{3}}) {
    proto::MoveRequest request;
    request.name = "obj";
    request.to = to;
    system->transport(common::NodeId{4})
        .call(n1, proto::verbs::kMove, request.encode(),
              [](rmi::CallResult) {});
  }
  system->simulation().run_until_idle();

  int copies = 0;
  for (auto node : system->nodes()) {
    if (system->server(node).registry().has_local("obj")) ++copies;
  }
  EXPECT_EQ(copies, 1);
}

}  // namespace
}  // namespace mage::rts
