// Resource-discovery tests (the intro's "host and resource discovery").
#include <gtest/gtest.h>

#include "support/test_objects.hpp"

namespace mage::rts {
namespace {

using testing::make_logic_system;

struct DiscoveryFixture : ::testing::Test {
  std::unique_ptr<MageSystem> system = make_logic_system(4);
  common::NodeId n1{1}, n2{2}, n3{3}, n4{4};
  std::vector<common::NodeId> all{n1, n2, n3, n4};
};

TEST_F(DiscoveryFixture, FindsAdvertisedResources) {
  system->server(n2).resource_board().advertise("printer", 30);
  system->server(n4).resource_board().advertise("printer", 55);
  auto hosts = system->client(n1).discover("printer", all);
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0].node, n2);
  EXPECT_DOUBLE_EQ(hosts[0].capacity, 30);
  EXPECT_EQ(hosts[1].node, n4);
}

TEST_F(DiscoveryFixture, NoOffersMeansEmpty) {
  EXPECT_TRUE(system->client(n1).discover("quantum-annealer", all).empty());
}

TEST_F(DiscoveryFixture, LocalBoardAnsweredWithoutNetwork) {
  system->server(n1).resource_board().advertise("sensor", 9);
  const auto calls = system->stats().counter("rmi.calls");
  auto hosts = system->client(n1).discover("sensor", {n1});
  EXPECT_EQ(hosts.size(), 1u);
  EXPECT_EQ(system->stats().counter("rmi.calls"), calls);
}

TEST_F(DiscoveryFixture, BestPicksHighestCapacity) {
  system->server(n2).resource_board().advertise("cpu", 10);
  system->server(n3).resource_board().advertise("cpu", 80);
  system->server(n4).resource_board().advertise("cpu", 40);
  EXPECT_EQ(system->client(n1).discover_best("cpu", all), n3);
}

TEST_F(DiscoveryFixture, BestWithNoOffersIsNoNode) {
  EXPECT_TRUE(common::is_no_node(
      system->client(n1).discover_best("gpu", all)));
}

TEST_F(DiscoveryFixture, CrashedHostsAreSkipped) {
  system->server(n2).resource_board().advertise("printer", 30);
  system->server(n3).resource_board().advertise("printer", 99);
  system->network().set_node_down(n3, true);
  auto hosts = system->client(n1).discover("printer", all);
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0].node, n2);
}

TEST_F(DiscoveryFixture, WithdrawnResourcesDisappear) {
  system->server(n2).resource_board().advertise("printer", 30);
  system->server(n2).resource_board().withdraw("printer");
  EXPECT_TRUE(system->client(n1).discover("printer", all).empty());
}

TEST_F(DiscoveryFixture, DiscoveryFeedsMigration) {
  // The full loop the paper motivates: discover where the resource is,
  // then move the computation there.
  system->server(n3).resource_board().advertise("seismic-sensor", 1.0);
  auto& client = system->client(n1);
  client.create_component("filter", "Counter");
  const auto target = client.discover_best("seismic-sensor", all);
  ASSERT_EQ(target, n3);
  core::Rev rev(client, "filter", target);
  auto handle = rev.bind();
  EXPECT_EQ(handle.location(), n3);
  EXPECT_EQ(handle.invoke<std::int64_t>("increment"), 1);
}

TEST(ResourceBoard, Basics) {
  ResourceBoard board;
  EXPECT_FALSE(board.offers("x"));
  board.advertise("x", 5);
  EXPECT_TRUE(board.offers("x"));
  EXPECT_DOUBLE_EQ(board.capacity("x"), 5);
  EXPECT_DOUBLE_EQ(board.capacity("y"), 0);
  board.advertise("x", 7);  // re-advertise updates
  EXPECT_DOUBLE_EQ(board.capacity("x"), 7);
  EXPECT_EQ(board.all().size(), 1u);
  board.withdraw("x");
  EXPECT_FALSE(board.offers("x"));
}

}  // namespace
}  // namespace mage::rts
