// MageClient API edge cases and misuse handling.
#include <gtest/gtest.h>

#include "support/test_objects.hpp"

namespace mage::rts {
namespace {

using testing::Counter;
using testing::make_logic_system;

struct ClientApiFixture : ::testing::Test {
  std::unique_ptr<MageSystem> system = make_logic_system(3);
  common::NodeId n1{1}, n2{2}, n3{3};
};

TEST_F(ClientApiFixture, CreateComponentOverwritesBinding) {
  auto& client = system->client(n1);
  auto& first = dynamic_cast<Counter&>(
      client.create_component("obj", "Counter"));
  first.set(5);
  auto& second = dynamic_cast<Counter&>(
      client.create_component("obj", "Counter"));
  EXPECT_EQ(second.get(), 0);  // a fresh object replaced the old binding
}

TEST_F(ClientApiFixture, LocalObjectThrowsWhenAbsent) {
  EXPECT_THROW((void)system->client(n1).local_object("nothing"),
               common::NotFoundError);
}

TEST_F(ClientApiFixture, InvokeUnknownComponentThrows) {
  common::NodeId cloc = common::kNoNode;
  EXPECT_THROW((void)system->client(n1).invoke<std::int64_t>(
                   cloc, "ghost", "increment"),
               common::NotFoundError);
}

TEST_F(ClientApiFixture, InvokeWithWrongArgumentTypeFails) {
  auto& client = system->client(n1);
  client.create_component("obj", "Counter");
  client.move("obj", n2);
  common::NodeId cloc = n2;
  // "add" expects an i64; sending a string makes the remote unmarshalling
  // blow up, which must surface as a remote error, not a crash.
  EXPECT_THROW((void)client.invoke<std::int64_t>(cloc, "obj", "add",
                                                 std::string("oops")),
               common::MageError);
}

TEST_F(ClientApiFixture, InvokeOnewayOnLocalObjectParksResult) {
  auto& client = system->client(n1);
  client.create_component("obj", "Counter");
  common::NodeId cloc = n1;
  client.invoke_oneway(cloc, "obj", "add", std::int64_t{3});
  EXPECT_EQ(client.fetch_result<std::int64_t>(cloc, "obj"), 3);
}

TEST_F(ClientApiFixture, MoveUnknownComponentThrows) {
  EXPECT_THROW(system->client(n1).move("ghost", n2),
               common::NotFoundError);
}

TEST_F(ClientApiFixture, ChargeAdvancesSimulatedTime) {
  auto& client = system->client(n1);
  const auto t0 = system->simulation().now();
  client.charge(common::msec(7));
  EXPECT_EQ(system->simulation().now() - t0, common::msec(7));
  client.charge(0);
  client.charge(-5);  // non-positive charges are no-ops
  EXPECT_EQ(system->simulation().now() - t0, common::msec(7));
}

TEST_F(ClientApiFixture, HasLocalFalseDuringTransit) {
  auto& client = system->client(n1);
  client.create_component("obj", "Counter");
  bool done = false;
  proto::MoveRequest request;
  request.name = "obj";
  request.to = n2;
  system->transport(n3).call(n1, proto::verbs::kMove, request.encode(),
                             [&done](rmi::CallResult) { done = true; });
  ASSERT_TRUE(system->simulation().run_until(
      [&] { return system->server(n1).in_transit("obj"); }));
  EXPECT_FALSE(client.has_local("obj"));
  system->simulation().run_until([&done] { return done; });
}

TEST_F(ClientApiFixture, EnsureClassAtUnknownClassThrows) {
  EXPECT_THROW(system->client(n1).ensure_class_at(n2, "Mystery"),
               common::MageError);
}

TEST_F(ClientApiFixture, FetchClassFromNodeWithoutItThrows) {
  // n2 never installed Counter, so the pull must fail cleanly.
  EXPECT_THROW(system->client(n1).fetch_class_to_local(n2, "Counter"),
               common::MageError);
}

TEST_F(ClientApiFixture, RebindAfterObjectRecreation) {
  auto& client = system->client(n1);
  client.create_component("obj", "Counter");
  client.move("obj", n2);
  // The origin recreates the component locally (a new epoch); stale
  // handles chasing the old forward still converge on *some* live copy.
  client.create_component("obj", "Counter");
  common::NodeId cloc = n1;
  EXPECT_EQ(client.invoke<std::int64_t>(cloc, "obj", "increment"), 1);
}

TEST_F(ClientApiFixture, DistinctActivitiesHaveDistinctIds) {
  EXPECT_NE(system->client(n1).activity(), system->client(n2).activity());
}

TEST_F(ClientApiFixture, HandleSurvivesAttributeDestruction) {
  auto& client = system->client(n1);
  client.create_component("obj", "Counter");
  core::RemoteHandle handle;
  {
    core::Rev rev(client, "obj", n2);
    handle = rev.bind();
  }  // attribute gone; the stub must keep working
  EXPECT_EQ(handle.invoke<std::int64_t>("increment"), 1);
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(handle.name(), "obj");
}

TEST_F(ClientApiFixture, DefaultHandleIsInvalid) {
  core::RemoteHandle handle;
  EXPECT_FALSE(handle.valid());
}

}  // namespace
}  // namespace mage::rts
