// Unit tests for the RMI layer: request/reply, marshalled envelopes,
// at-most-once execution under retransmission, loss recovery, deferred
// replies, error propagation.
#include <gtest/gtest.h>

#include <optional>

#include "common/error.hpp"
#include "net/network.hpp"
#include "rmi/envelope.hpp"
#include "rmi/transport.hpp"
#include "sim/simulation.hpp"

namespace mage::rmi {
namespace {

serial::Buffer bytes(std::initializer_list<std::uint8_t> list) {
  return serial::Buffer(std::vector<std::uint8_t>{list});
}

// --- envelope ----------------------------------------------------------------

TEST(Envelope, RequestRoundTrip) {
  Envelope e;
  e.kind = EnvelopeKind::Request;
  e.request_id = common::RequestId{42};
  e.verb = common::intern_verb("mage.invoke");
  e.body = bytes({1, 2, 3});
  const auto decoded = Envelope::decode(e.encode());
  EXPECT_EQ(decoded.kind, EnvelopeKind::Request);
  EXPECT_EQ(decoded.request_id, common::RequestId{42});
  EXPECT_EQ(decoded.verb, common::intern_verb("mage.invoke"));
  EXPECT_EQ(decoded.body, bytes({1, 2, 3}));
}

TEST(Envelope, ReplyOkRoundTrip) {
  Envelope e;
  e.kind = EnvelopeKind::Reply;
  e.request_id = common::RequestId{7};
  e.verb = common::intern_verb("v");
  e.ok = true;
  e.body = bytes({9});
  const auto decoded = Envelope::decode(e.encode());
  EXPECT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.body, bytes({9}));
}

TEST(Envelope, ReplyErrorRoundTrip) {
  Envelope e;
  e.kind = EnvelopeKind::Reply;
  e.request_id = common::RequestId{7};
  e.verb = common::intern_verb("v");
  e.ok = false;
  e.error = "kaboom";
  const auto decoded = Envelope::decode(e.encode());
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error, "kaboom");
}

TEST(Envelope, BadKindThrows) {
  serial::Buffer junk(std::vector<std::uint8_t>{9, 0, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_THROW((void)Envelope::decode(junk), common::SerializationError);
}

TEST(Envelope, TruncatedBodyThrows) {
  Envelope e;
  e.kind = EnvelopeKind::Request;
  e.request_id = common::RequestId{1};
  e.verb = common::intern_verb("v");
  e.body = bytes({1, 2, 3, 4});
  const auto flat = e.encode();
  // Chop two payload bytes off: the header's declared body size no longer
  // matches what follows.
  const auto truncated = flat.slice(0, flat.size() - 2);
  EXPECT_THROW((void)Envelope::decode(truncated), common::SerializationError);
}

TEST(Envelope, ScatterGatherMatchesFlatEncoding) {
  Envelope e;
  e.kind = EnvelopeKind::Reply;
  e.request_id = common::RequestId{99};
  e.verb = common::intern_verb("mage.invoke");
  e.ok = true;
  e.body = bytes({11, 22, 33});
  const auto header = e.encode_header();
  const auto flat = e.encode();
  // flat == header ++ body
  ASSERT_EQ(flat.size(), header.size() + e.body.size());
  EXPECT_EQ(flat.slice(0, header.size()), header);
  EXPECT_EQ(flat.slice(header.size(), e.body.size()), e.body);
  const auto decoded = Envelope::decode(header, e.body);
  EXPECT_EQ(decoded.request_id, common::RequestId{99});
  EXPECT_EQ(decoded.body, e.body);
}

TEST(Envelope, SingleFragmentFastPathLayout) {
  Envelope e;
  e.kind = EnvelopeKind::Request;
  e.request_id = common::RequestId{7};
  e.verb = common::intern_verb("v");
  e.body = bytes({1, 2, 3, 4});

  Envelope::reset_header_counters();
  const auto header = e.encode_header();
  EXPECT_EQ(Envelope::fast_path_headers(), 1u);
  EXPECT_EQ(Envelope::list_path_headers(), 0u);
  // tag | u64 id | u32 verb | u32 size — no count byte, no size list.
  ASSERT_EQ(header.size(), 1u + 8u + 4u + 4u);
  EXPECT_EQ(header[0] & 0x40, 0x40);  // kSingleFragmentFlag
  EXPECT_EQ(header[0] & ~0x40, 0);    // kind = Request

  const auto decoded = Envelope::decode(header, e.body);
  EXPECT_EQ(decoded.kind, EnvelopeKind::Request);
  EXPECT_EQ(decoded.request_id, common::RequestId{7});
  EXPECT_EQ(decoded.body, e.body);

  const auto from_flat = Envelope::decode(e.encode());
  EXPECT_EQ(from_flat.body, e.body);
}

TEST(Envelope, MultiFragmentBodiesUseTheListPath) {
  Envelope e;
  e.kind = EnvelopeKind::Reply;
  e.request_id = common::RequestId{8};
  e.verb = common::intern_verb("v");
  e.ok = true;
  e.body.append(bytes({1, 2}));
  e.body.append(bytes({3, 4, 5}));

  Envelope::reset_header_counters();
  const auto decoded = Envelope::decode(e.encode_header(), e.body);
  EXPECT_EQ(Envelope::fast_path_headers(), 0u);
  EXPECT_EQ(Envelope::list_path_headers(), 1u);
  EXPECT_EQ(decoded.body, e.body);
  EXPECT_EQ(decoded.body.fragments(), 2u);
}

TEST(Envelope, EmptyBodyUsesTheListPath) {
  Envelope e;
  e.kind = EnvelopeKind::Request;
  e.request_id = common::RequestId{9};
  e.verb = common::intern_verb("v");

  Envelope::reset_header_counters();
  const auto decoded = Envelope::decode(e.encode());
  EXPECT_EQ(Envelope::list_path_headers(), 1u);
  EXPECT_EQ(decoded.body.fragments(), 0u);
  EXPECT_TRUE(decoded.body.empty());
}

TEST(Envelope, FastPathSizeMismatchRejected) {
  Envelope e;
  e.kind = EnvelopeKind::Request;
  e.request_id = common::RequestId{10};
  e.verb = common::intern_verb("v");
  e.body = bytes({1, 2, 3, 4});
  const auto header = e.encode_header();
  serial::BufferChain wrong = bytes({1, 2, 3});
  EXPECT_THROW((void)Envelope::decode(header, wrong),
               common::SerializationError);
}

// --- transport ------------------------------------------------------------------

struct RmiFixture : ::testing::Test {
  sim::Simulation sim{7};
  net::Network net{sim, net::CostModel::zero()};
  common::NodeId a = net.add_node("a");
  common::NodeId b = net.add_node("b");
  Transport ta{net, a};
  Transport tb{net, b};
};

TEST_F(RmiFixture, EchoCall) {
  tb.register_service("echo", [](common::NodeId, const auto& body,
                                 Replier replier) { replier.ok(body); });
  auto result = ta.call_sync(b, "echo", bytes({5, 6}));
  EXPECT_EQ(result, bytes({5, 6}));
  EXPECT_EQ(sim.stats().counter("rmi.calls"), 1);
}

TEST_F(RmiFixture, CallerIdentityIsPassed) {
  std::optional<common::NodeId> seen;
  tb.register_service("who", [&seen](common::NodeId caller, const auto&,
                                     Replier replier) {
    seen = caller;
    replier.ok({});
  });
  (void)ta.call_sync(b, "who", {});
  EXPECT_EQ(seen, a);
}

TEST_F(RmiFixture, RemoteErrorPropagates) {
  tb.register_service("fail", [](common::NodeId, const auto&,
                                 Replier replier) {
    replier.error("application exploded");
  });
  EXPECT_THROW((void)ta.call_sync(b, "fail", {}),
               common::RemoteInvocationError);
}

TEST_F(RmiFixture, UnknownVerbIsRemoteError) {
  try {
    (void)ta.call_sync(b, "nope", {});
    FAIL() << "expected exception";
  } catch (const common::RemoteInvocationError& e) {
    EXPECT_NE(std::string(e.what()).find("no service"), std::string::npos);
  }
}

TEST_F(RmiFixture, LoopbackCallWorks) {
  ta.register_service("self", [](common::NodeId, const auto&,
                                 Replier replier) { replier.ok({}); });
  EXPECT_NO_THROW((void)ta.call_sync(a, "self", {}));
}

TEST_F(RmiFixture, DeferredReply) {
  // The service holds its Replier and answers 1ms later — the pattern all
  // multi-party MAGE protocols use.
  std::optional<Replier> parked;
  tb.register_service("later", [&parked](common::NodeId, const auto&,
                                         Replier replier) {
    parked = std::move(replier);
  });
  std::optional<CallResult> result;
  ta.call(b, "later", {}, [&result](CallResult r) { result = std::move(r); });
  sim.run_until([&parked] { return parked.has_value(); });
  EXPECT_FALSE(result.has_value());
  sim.schedule_after(1000, [&parked] { parked->ok(bytes({1})); });
  sim.run_until([&result] { return result.has_value(); });
  EXPECT_TRUE(result->ok);
}

TEST_F(RmiFixture, ConcurrentCallsMatchReplies) {
  tb.register_service("id", [](common::NodeId, const auto& body,
                               Replier replier) { replier.ok(body); });
  std::vector<std::optional<CallResult>> results(10);
  for (std::uint8_t i = 0; i < 10; ++i) {
    ta.call(b, "id", bytes({i}), [&results, i](CallResult r) {
      results[i] = std::move(r);
    });
  }
  sim.run_until_idle();
  for (std::uint8_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(results[i].has_value());
    EXPECT_EQ(results[i]->body, bytes({i}));
  }
}

struct LossyRmiFixture : ::testing::Test {
  sim::Simulation sim{11};
  net::Network net{sim, net::CostModel::zero()};
  common::NodeId a = net.add_node("a");
  common::NodeId b = net.add_node("b");
  Transport ta{net, a};
  Transport tb{net, b};
};

TEST_F(LossyRmiFixture, RetransmissionRecoversFromLoss) {
  net.set_loss_rate(0.4);
  int executions = 0;
  tb.register_service("inc", [&executions](common::NodeId, const auto&,
                                           Replier replier) {
    ++executions;
    replier.ok({});
  });
  CallOptions options;
  options.retry_timeout_us = 10'000;
  options.max_attempts = 50;
  for (int i = 0; i < 50; ++i) {
    EXPECT_NO_THROW((void)ta.call_sync(b, "inc", {}, options));
  }
  // At-most-once: every call executed exactly once despite retransmission.
  EXPECT_EQ(executions, 50);
  EXPECT_GT(sim.stats().counter("rmi.retransmissions"), 0);
}

TEST_F(LossyRmiFixture, DuplicateRequestsAreSuppressed) {
  // Drop every reply by hand: partition after first delivery is fiddly, so
  // instead use 100% loss on the b->a direction via extra trick: we
  // partition after the request arrives, forcing a retransmission storm,
  // then heal and confirm a single execution.
  int executions = 0;
  tb.register_service("once", [&executions](common::NodeId, const auto&,
                                            Replier replier) {
    ++executions;
    replier.ok({});
  });

  CallOptions options;
  options.retry_timeout_us = 5'000;
  options.max_attempts = 20;
  std::optional<CallResult> result;
  ta.call(b, "once", {}, [&result](CallResult r) { result = std::move(r); },
          options);
  // Let the request arrive and the reply vanish into a partition.
  sim.run_until([&executions] { return executions == 1; });
  net.set_partitioned(a, b, true);
  sim.run_for(20'000);  // several retransmission timeouts fire into the void
  net.set_partitioned(a, b, false);
  sim.run_until([&result] { return result.has_value(); });
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(executions, 1);
  EXPECT_GT(sim.stats().counter("rmi.duplicates_suppressed"), 0);
}

TEST_F(LossyRmiFixture, ExhaustedRetriesFailTheCall) {
  net.set_partitioned(a, b, true);
  tb.register_service("void", [](common::NodeId, const auto&,
                                 Replier replier) { replier.ok({}); });
  CallOptions options;
  options.retry_timeout_us = 1'000;
  options.max_attempts = 3;
  EXPECT_THROW((void)ta.call_sync(b, "void", {}, options),
               common::TransportError);
  EXPECT_EQ(sim.stats().counter("rmi.failures"), 1);
}

TEST_F(LossyRmiFixture, StaleRepliesAreIgnored) {
  // A reply that arrives after the call already failed must not crash or
  // double-complete.
  std::optional<Replier> parked;
  tb.register_service("slow", [&parked](common::NodeId, const auto&,
                                        Replier replier) {
    parked = std::move(replier);
  });
  CallOptions options;
  options.retry_timeout_us = 1'000;
  options.max_attempts = 2;
  std::optional<CallResult> result;
  ta.call(b, "slow", {}, [&result](CallResult r) { result = std::move(r); },
          options);
  sim.run_until([&result] { return result.has_value(); });
  EXPECT_FALSE(result->ok);  // timed out
  ASSERT_TRUE(parked.has_value());
  parked->ok({});  // late reply
  sim.run_until_idle();
  EXPECT_GE(sim.stats().counter("rmi.stale_replies"), 1);
}

// Cost accounting: with the classic model, a warm trivial call should land
// in the ballpark the paper measured for Java RMI (~18-20 ms warm).
TEST(RmiCost, WarmCallMatchesCalibration) {
  sim::Simulation sim(3);
  net::Network net(sim, net::CostModel::jdk122_classic());
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  Transport ta(net, a);
  Transport tb(net, b);
  tb.register_service("noop", [](common::NodeId, const auto&,
                                 Replier replier) { replier.ok({}); });
  (void)ta.call_sync(b, "noop", {});  // cold call pays connection setup
  const auto warm_start = sim.now();
  (void)ta.call_sync(b, "noop", {});
  const double warm_ms = common::to_ms(sim.now() - warm_start);
  EXPECT_GT(warm_ms, 14.0);
  EXPECT_LT(warm_ms, 24.0);
}

TEST(RmiCost, ColdCallPaysConnectionSetup) {
  sim::Simulation sim(3);
  net::Network net(sim, net::CostModel::jdk122_classic());
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  Transport ta(net, a);
  Transport tb(net, b);
  tb.register_service("noop", [](common::NodeId, const auto&,
                                 Replier replier) { replier.ok({}); });
  const auto t0 = sim.now();
  (void)ta.call_sync(b, "noop", {});
  const double cold_ms = common::to_ms(sim.now() - t0);
  const auto t1 = sim.now();
  (void)ta.call_sync(b, "noop", {});
  const double warm_ms = common::to_ms(sim.now() - t1);
  EXPECT_GT(cold_ms, warm_ms + 5.0);  // setup is worth >5ms
}

}  // namespace
}  // namespace mage::rmi
