// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace mage::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  common::SimTime at = 0;
  while (!q.empty()) q.pop(at)();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBreaksFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  common::SimTime at = 0;
  while (!q.empty()) q.pop(at)();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PopReportsTime) {
  EventQueue q;
  q.schedule(42, [] {});
  common::SimTime at = 0;
  (void)q.pop(at);
  EXPECT_EQ(at, 42);
}

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  sim.schedule_at(100, [] {});
  sim.run_until_idle();
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation sim;
  common::SimTime fired_at = -1;
  sim.schedule_at(50, [&sim, &fired_at] {
    sim.schedule_after(25, [&sim, &fired_at] { fired_at = sim.now(); });
  });
  sim.run_until_idle();
  EXPECT_EQ(fired_at, 75);
}

TEST(Simulation, NegativeDelayClampsToNow) {
  Simulation sim;
  sim.schedule_at(10, [] {});
  sim.run_until_idle();
  bool fired = false;
  sim.schedule_after(-5, [&fired] { fired = true; });
  sim.run_until_idle();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, RunUntilPredicate) {
  Simulation sim;
  int counter = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i * 10, [&counter] { ++counter; });
  }
  EXPECT_TRUE(sim.run_until([&counter] { return counter == 4; }));
  EXPECT_EQ(counter, 4);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulation, RunUntilReturnsFalseWhenDrained) {
  Simulation sim;
  sim.schedule_at(5, [] {});
  EXPECT_FALSE(sim.run_until([] { return false; }));
}

TEST(Simulation, RunUntilRespectsDeadline) {
  Simulation sim;
  int counter = 0;
  sim.schedule_at(10, [&counter] { ++counter; });
  sim.schedule_at(1000, [&counter] { ++counter; });
  EXPECT_FALSE(sim.run_until([&counter] { return counter == 2; }, 100));
  EXPECT_EQ(counter, 1);
}

TEST(Simulation, RunForAdvancesExactly) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(30, [&fired] { ++fired; });
  sim.schedule_at(80, [&fired] { ++fired; });
  sim.run_for(50);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(fired, 1);
  sim.run_for(50);
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsScheduledDuringRunExecute) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    sim.schedule_at(15, [&] { order.push_back(2); });
  });
  sim.schedule_at(20, [&] { order.push_back(3); });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, RngIsSeeded) {
  Simulation a(99), b(99), c(100);
  EXPECT_EQ(a.rng().next(), b.rng().next());
  Simulation a2(99);
  EXPECT_NE(a2.rng().next(), c.rng().next());
}

TEST(Simulation, StatsAreAttached) {
  Simulation sim;
  sim.stats().add("k", 3);
  EXPECT_EQ(sim.stats().counter("k"), 3);
}

// Stress: many interleaved events with identical timestamps keep FIFO order.
TEST(Simulation, ManySameTimeEventsStableOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  sim.run_until_idle();
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, RunWindowStopsStrictlyBeforeBound) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.schedule_at(30, [&] { order.push_back(3); });
  (void)sim.run_window(30);  // [_, 30): the event AT the bound must wait
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.next_event_time(), 30);
  (void)sim.run_window(31);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.next_event_time(), Simulation::kNoDeadline);
}

TEST(Simulation, RunWindowReportsWakes) {
  Simulation sim;
  sim.schedule_at(10, [] {}, Wake::No);
  EXPECT_FALSE(sim.run_window(20));
  sim.schedule_at(30, [] {}, Wake::Yes);
  EXPECT_TRUE(sim.run_window(40));
}

TEST(Simulation, WakeContractViolationIsFlagged) {
  Simulation sim;
  sim.set_wake_contract_checks(true);
  bool flag = false;
  // A mis-marked event: flips driver-visible state under Wake::No without
  // calling wake().  The checker must count it; run_until still succeeds
  // via the drain-time re-check (behaviour is unchanged by the checker).
  sim.schedule_after(10, [&flag] { flag = true; }, Wake::No);
  EXPECT_TRUE(sim.run_until([&flag] { return flag; }));
  EXPECT_EQ(sim.stats().counter("sim.wake_contract_violations"), 1);
}

TEST(Simulation, WakeContractCleanRunCountsNothing) {
  Simulation sim;
  sim.set_wake_contract_checks(true);
  bool flag = false;
  sim.schedule_after(5, [] {}, Wake::No);  // non-waking, touches nothing
  sim.schedule_after(10, [&flag, &sim] {
    flag = true;
    sim.wake();
  }, Wake::No);
  EXPECT_TRUE(sim.run_until([&flag] { return flag; }));
  EXPECT_EQ(sim.stats().counter("sim.wake_contract_violations"), 0);
}

TEST(Simulation, WakeContractCheckCanBeDisabled) {
  Simulation sim;
  sim.set_wake_contract_checks(false);
  bool flag = false;
  sim.schedule_after(10, [&flag] { flag = true; }, Wake::No);
  EXPECT_TRUE(sim.run_until([&flag] { return flag; }));
  EXPECT_EQ(sim.stats().counter("sim.wake_contract_violations"), 0);
}

}  // namespace
}  // namespace mage::sim
