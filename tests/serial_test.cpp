// Unit tests for src/serial: writer/reader, codecs, type registry.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "serial/reader.hpp"
#include "serial/serializable.hpp"
#include "serial/traits.hpp"
#include "serial/type_registry.hpp"
#include "serial/writer.hpp"

namespace mage::serial {
namespace {

TEST(WriterReader, PrimitivesRoundTrip) {
  Writer w;
  w.write_u8(0xAB);
  w.write_u16(0xBEEF);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFull);
  w.write_i32(-42);
  w.write_i64(-7'000'000'000LL);
  w.write_bool(true);
  w.write_bool(false);
  w.write_f64(3.14159);
  w.write_string("mage");

  Reader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(), 0xBEEF);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_EQ(r.read_i64(), -7'000'000'000LL);
  EXPECT_TRUE(r.read_bool());
  EXPECT_FALSE(r.read_bool());
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_EQ(r.read_string(), "mage");
  EXPECT_TRUE(r.at_end());
}

TEST(WriterReader, ExtremeValues) {
  Writer w;
  w.write_i64(std::numeric_limits<std::int64_t>::min());
  w.write_i64(std::numeric_limits<std::int64_t>::max());
  w.write_u64(std::numeric_limits<std::uint64_t>::max());
  w.write_f64(std::numeric_limits<double>::infinity());
  w.write_f64(-0.0);

  Reader r(w.bytes());
  EXPECT_EQ(r.read_i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.read_i64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(r.read_u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.read_f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.read_f64(), 0.0);
}

TEST(WriterReader, EmptyString) {
  Writer w;
  w.write_string("");
  Reader r(w.bytes());
  EXPECT_EQ(r.read_string(), "");
  EXPECT_TRUE(r.at_end());
}

TEST(WriterReader, StringWithEmbeddedNulls) {
  Writer w;
  std::string s("a\0b\0c", 5);
  w.write_string(s);
  Reader r(w.bytes());
  EXPECT_EQ(r.read_string(), s);
}

TEST(WriterReader, RawBytes) {
  Writer w;
  const std::uint8_t data[] = {1, 2, 3, 4};
  w.write_raw(data, sizeof(data));
  Reader r(w.bytes());
  std::uint8_t out[4] = {};
  r.read_raw(out, 4);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
}

TEST(WriterReader, TakeEmptiesWriter) {
  Writer w;
  w.write_u32(1);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(Reader, TruncatedPayloadThrows) {
  Writer w;
  w.write_u16(7);
  Reader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 7);  // little-endian low byte
  EXPECT_EQ(r.read_u8(), 0);
  EXPECT_THROW(r.read_u8(), common::SerializationError);
}

TEST(Reader, TruncatedStringThrows) {
  Writer w;
  w.write_u32(100);  // claims 100 bytes follow; none do
  Reader r(w.bytes());
  EXPECT_THROW(r.read_string(), common::SerializationError);
}

TEST(Reader, OffsetAndRemaining) {
  Writer w;
  w.write_u32(1);
  w.write_u32(2);
  Reader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.read_u32();
  EXPECT_EQ(r.offset(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
}

// --- codecs -------------------------------------------------------------------

template <typename T>
T round_trip(const T& value) {
  Writer w;
  put(w, value);
  Reader r(w.bytes());
  T out = get<T>(r);
  EXPECT_TRUE(r.at_end());
  return out;
}

TEST(Codec, Scalars) {
  EXPECT_EQ(round_trip<std::int32_t>(-5), -5);
  EXPECT_EQ(round_trip<std::uint32_t>(5u), 5u);
  EXPECT_EQ(round_trip<std::int64_t>(-5'000'000'000LL), -5'000'000'000LL);
  EXPECT_EQ(round_trip<std::uint64_t>(~0ull), ~0ull);
  EXPECT_EQ(round_trip<bool>(true), true);
  EXPECT_DOUBLE_EQ(round_trip<double>(2.5), 2.5);
  EXPECT_EQ(round_trip<std::string>("hello"), "hello");
}

TEST(Codec, Vector) {
  std::vector<std::int64_t> v{1, -2, 3};
  EXPECT_EQ(round_trip(v), v);
  EXPECT_EQ(round_trip(std::vector<std::int64_t>{}),
            std::vector<std::int64_t>{});
}

TEST(Codec, NestedVector) {
  std::vector<std::vector<std::string>> v{{"a", "b"}, {}, {"c"}};
  EXPECT_EQ(round_trip(v), v);
}

TEST(Codec, Pair) {
  std::pair<std::string, std::int64_t> p{"k", 9};
  EXPECT_EQ(round_trip(p), p);
}

TEST(Codec, Optional) {
  std::optional<std::string> some{"x"};
  std::optional<std::string> none;
  EXPECT_EQ(round_trip(some), some);
  EXPECT_EQ(round_trip(none), none);
}

TEST(Codec, Map) {
  std::map<std::string, std::int64_t> m{{"a", 1}, {"b", 2}};
  EXPECT_EQ(round_trip(m), m);
}

TEST(Codec, Unit) {
  EXPECT_EQ(round_trip(Unit{}), Unit{});
}

TEST(Codec, CompositeKitchenSink) {
  std::map<std::string, std::vector<std::pair<std::int64_t, std::string>>> m{
      {"x", {{1, "one"}, {2, "two"}}},
      {"y", {}},
  };
  EXPECT_EQ(round_trip(m), m);
}

// Property sweep: random strings of many lengths round-trip byte-exactly.
class StringRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(StringRoundTrip, RandomPayload) {
  common::Rng rng(GetParam());
  const auto length = static_cast<std::size_t>(GetParam()) * 37 % 5000;
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    s.push_back(static_cast<char>(rng.next_below(256)));
  }
  EXPECT_EQ(round_trip(s), s);
}

INSTANTIATE_TEST_SUITE_P(Lengths, StringRoundTrip,
                         ::testing::Range(0, 20));

// Property sweep: random int64 vectors round-trip.
class VectorRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(VectorRoundTrip, RandomPayload) {
  common::Rng rng(GetParam() + 1000);
  std::vector<std::int64_t> v(rng.next_below(200));
  for (auto& x : v) x = static_cast<std::int64_t>(rng.next());
  EXPECT_EQ(round_trip(v), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorRoundTrip, ::testing::Range(0, 10));

// --- type registry ------------------------------------------------------------

class Blob : public Serializable {
 public:
  std::string class_name() const override { return "Blob"; }
  void serialize(Writer& w) const override { w.write_i64(x); }
  void deserialize(Reader& r) override { x = r.read_i64(); }
  std::int64_t x = 0;
};

TEST(TypeRegistry, RegisterAndCreate) {
  TypeRegistry reg;
  EXPECT_TRUE(reg.register_type<Blob>());
  EXPECT_TRUE(reg.contains("Blob"));
  auto obj = reg.create("Blob");
  EXPECT_EQ(obj->class_name(), "Blob");
}

TEST(TypeRegistry, ReRegistrationReturnsFalse) {
  TypeRegistry reg;
  EXPECT_TRUE(reg.register_type<Blob>());
  EXPECT_FALSE(reg.register_type<Blob>());
}

TEST(TypeRegistry, UnknownClassThrows) {
  TypeRegistry reg;
  EXPECT_THROW((void)reg.create("Nope"), common::SerializationError);
}

TEST(TypeRegistry, DeserializeObjectRestoresState) {
  TypeRegistry reg;
  reg.register_type<Blob>();
  Blob original;
  original.x = 77;
  Writer w;
  original.serialize(w);
  Reader r(w.bytes());
  auto restored = reg.deserialize_object("Blob", r);
  EXPECT_EQ(dynamic_cast<Blob&>(*restored).x, 77);
}

TEST(TypeRegistry, RegisteredNamesSorted) {
  TypeRegistry reg;
  reg.register_type("b", [] { return std::make_unique<Blob>(); });
  reg.register_type("a", [] { return std::make_unique<Blob>(); });
  const auto names = reg.registered_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace mage::serial
