// Distributed collections under chaos on the sharded engine: the lifeline
// GLB workload (bench/support/glb_harness.hpp) drains an unbalanced tree
// through DistMap expands while per-node rebalancers migrate partitions
// and the fault schedule injects loss bursts and partition/heal pairs
// racing those migrations.
//
// Asserted per seed: bit-identical content digests (and migration/steal
// counts) at 1, 2, and 8 workers; exactly-once expansion per key via the
// partition exec counters (zero violations, map size == precomputed tree
// size, value sum == key count); and at least one load-driven partition
// migration — the rebalancer must have acted, not merely survived.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/glb_harness.hpp"

namespace mage::glb {
namespace {

class DistChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistChaos, GlbDrainsExactlyOnceAndDeterministically) {
  GlbParams params;
  params.seed = GetParam();
  params.chaos = true;

  std::vector<GlbRun> runs;
  for (const int threads : {1, 2, 8}) {
    runs.push_back(run_glb(params, threads));
  }
  const GlbRun& base = runs.front();
  ASSERT_TRUE(base.completed);
  EXPECT_GT(base.tree_size, 50u);  // smallest seeded tree (seed 47) is 85
  EXPECT_GT(base.faults_applied, 0);  // the schedule actually fired

  for (const GlbRun& run : runs) {
    ASSERT_TRUE(run.completed);

    // Exactly-once per key: every tree node expanded, executed once.
    EXPECT_EQ(run.exec_violations, 0u);
    EXPECT_EQ(run.map_count, run.tree_size);
    EXPECT_EQ(run.map_sum, static_cast<std::int64_t>(run.tree_size));
    EXPECT_EQ(run.processed, run.tree_size);
    EXPECT_TRUE(run.exactly_once());

    // Rebalancing happened while faults raced it.
    EXPECT_GE(run.migrations, 1);
    EXPECT_GE(run.lifeline_steals, 1);

    // Sharded determinism contract, observed from the collection layer.
    EXPECT_EQ(run.digest, base.digest);
    EXPECT_EQ(run.processed, base.processed);
    EXPECT_EQ(run.migrations, base.migrations);
    EXPECT_EQ(run.lifeline_steals, base.lifeline_steals);
    EXPECT_EQ(run.rebalance_moves, base.rebalance_moves);
    EXPECT_EQ(run.dup_hits, base.dup_hits);
    EXPECT_EQ(run.requeues, base.requeues);
    EXPECT_EQ(run.table_repairs, base.table_repairs);
    EXPECT_EQ(run.faults_applied, base.faults_applied);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistChaos,
                         ::testing::Values(11ull, 23ull, 47ull));

// Clean-network control: same workload, no faults — still deterministic,
// still exactly-once, still migrating (the skew alone drives it), and no
// driver ever needed an application-level requeue.
TEST(DistChaosControl, CleanRunNeedsNoRequeues) {
  GlbParams params;
  params.seed = 23;
  params.chaos = false;

  const GlbRun one = run_glb(params, 1);
  const GlbRun eight = run_glb(params, 8);
  for (const GlbRun& run : {one, eight}) {
    ASSERT_TRUE(run.completed);
    EXPECT_TRUE(run.exactly_once());
    EXPECT_GE(run.migrations, 1);
    EXPECT_EQ(run.requeues, 0);
    EXPECT_EQ(run.dup_hits, 0);
    EXPECT_EQ(run.faults_applied, 0);
  }
  EXPECT_EQ(one.digest, eight.digest);
  EXPECT_EQ(one.migrations, eight.migrations);
  EXPECT_EQ(one.lifeline_steals, eight.lifeline_steals);
}

}  // namespace
}  // namespace mage::glb
