// Sharded-simulation contract tests.
//
// The two load-bearing properties of sim::ShardedSim:
//
//   1. determinism — one seed fully determines each node's event order at
//      ANY worker-thread count (the conservative windows are a pure
//      function of event timestamps; mailbox drains happen in fixed source
//      order at barriers);
//   2. the threading contract is enforced, not advisory — configuration
//      mutations while workers run, driver-blocking calls on shard
//      threads, and zero-lookahead construction all throw.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "net/cost_model.hpp"
#include "net/network.hpp"
#include "rmi/transport.hpp"
#include "serial/writer.hpp"
#include "sim/sharded.hpp"

namespace mage {
namespace {

net::CostModel lan_model() {
  net::CostModel m = net::CostModel::zero();
  m.propagation_us = 200;
  m.per_message_cpu_us = 20;
  m.connection_setup_us = 100;
  m.local_invoke_us = 1;
  return m;
}

// One delivery observed by a node: (caller, seq, shard-local sim time).
using Observation = std::tuple<std::uint32_t, std::uint64_t, common::SimTime>;

// Runs a small all-to-all echo mesh on the sharded engine and returns each
// node's full observation log (order + timestamps).
std::vector<std::vector<Observation>> run_mesh(int nodes, int calls_per_link,
                                               int threads,
                                               std::uint64_t seed) {
  const net::CostModel model = lan_model();
  sim::ShardedSim ssim(static_cast<std::size_t>(nodes), seed,
                       net::Network::min_link_latency(model));
  net::Network net(ssim, model);

  std::vector<common::NodeId> ids;
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  for (int i = 0; i < nodes; ++i) {
    ids.push_back(net.add_node("n" + std::to_string(i)));
  }
  for (int i = 0; i < nodes; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
  }

  std::vector<std::vector<Observation>> observed(
      static_cast<std::size_t>(nodes) + 1);
  const common::VerbId echo = common::intern_verb("sharded.echo");
  for (int i = 0; i < nodes; ++i) {
    auto* log = &observed[ids[i].value()];
    auto& sim = net.node_sim(ids[i]);
    transports[i]->register_service(
        echo, [log, &sim](common::NodeId caller,
                          const serial::BufferChain& body,
                          rmi::Replier replier) {
          serial::ChainReader r(body);
          log->emplace_back(caller.value(), r.read_u64(), sim.now());
          replier.ok(body);
        });
  }

  struct Pipe {
    rmi::Transport* transport;
    common::NodeId dst;
    std::int64_t next = 0;
    std::int64_t* completed = nullptr;
  };
  std::vector<std::int64_t> completed(static_cast<std::size_t>(nodes) + 1, 0);
  std::vector<Pipe> pipes;
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      if (i != j) {
        pipes.push_back(
            Pipe{transports[i].get(), ids[j], 0, &completed[ids[i].value()]});
      }
    }
  }
  std::function<void(Pipe&)> next_call = [&](Pipe& p) {
    if (p.next >= calls_per_link) return;
    serial::Writer w(8);
    w.write_u64(static_cast<std::uint64_t>(p.next++));
    p.transport->call(p.dst, echo, w.take(), [&next_call, &p](rmi::CallResult r) {
      // Thrown on a worker thread; ShardedSim::run_until rethrows it on
      // the driver (gtest assertions are not thread-safe off-thread).
      if (!r.ok) throw common::MageError("echo failed: " + r.error);
      ++*p.completed;
      next_call(p);
    });
  };
  for (auto& p : pipes) {
    next_call(p);
    next_call(p);  // window of 2 outstanding per link
  }

  const std::int64_t total =
      static_cast<std::int64_t>(nodes) * (nodes - 1) * calls_per_link;
  const bool done = ssim.run_until(
      [&] {
        std::int64_t sum = 0;
        for (auto c : completed) sum += c;
        return sum == total;
      },
      threads);
  EXPECT_TRUE(done);
  return observed;
}

TEST(ShardedSim, SameSeedSameOrderAtAnyThreadCount) {
  const auto one = run_mesh(4, 30, 1, 99);
  const auto two = run_mesh(4, 30, 2, 99);
  const auto four = run_mesh(4, 30, 4, 99);
  ASSERT_EQ(one.size(), two.size());
  // Identical per-node event order AND identical shard-local timestamps:
  // the parallel execution replays the sequential one exactly.
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  // And the logs are non-trivial: every node saw every peer's full stream.
  for (std::size_t node = 1; node < one.size(); ++node) {
    EXPECT_EQ(one[node].size(), 3u * 30u);
  }
}

TEST(ShardedSim, DifferentSeedsDiverge) {
  // The per-shard RNG streams (and so loss decisions, had any been
  // configured) derive from the master seed; sanity-check the derivation
  // by observing shard RNGs directly.
  sim::ShardedSim a(2, 1, 100);
  sim::ShardedSim b(2, 2, 100);
  EXPECT_NE(a.shard(0).rng().next_below(1u << 30),
            b.shard(0).rng().next_below(1u << 30));
  EXPECT_NE(a.shard(0).rng().next_below(1u << 30),
            a.shard(1).rng().next_below(1u << 30));
}

TEST(ShardedSim, ZeroLookaheadRejected) {
  EXPECT_THROW(sim::ShardedSim(4, 7, 0), common::MageError);
}

TEST(ShardedSim, CostModelMustCoverLookahead) {
  sim::ShardedSim ssim(2, 7, 10'000);  // lookahead larger than any delay
  EXPECT_THROW(net::Network(ssim, net::CostModel::zero()),
               common::MageError);
}

TEST(ShardedSim, PostedEventsRunInTimeOrder) {
  sim::ShardedSim ssim(2, 7, 50);
  std::vector<int> order;
  // Driver-side posts before the run: both land in shard 1's mailbox and
  // must fire in time order regardless of post order.
  ssim.post(0, 1, 200, [&order] { order.push_back(2); });
  ssim.post(0, 1, 100, [&order] { order.push_back(1); });
  ssim.run_until_idle(2);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(ssim.shard(1).now(), 200);
}

TEST(ShardedSim, ConfigFrozenWhileWorkersRun) {
  const net::CostModel model = lan_model();
  sim::ShardedSim ssim(2, 7, net::Network::min_link_latency(model));
  net::Network net(ssim, model);
  net.add_node("a");
  net.add_node("b");
  // An event on a worker thread mutating global network config must throw;
  // the error surfaces through run_until on the driver.
  ssim.shard(0).schedule_after(10, [&net] { net.set_loss_rate(0.5); });
  EXPECT_THROW(ssim.run_until_idle(2), common::MageError);
  // Stopped again: configuration reopens.
  EXPECT_NO_THROW(net.set_loss_rate(0.0));
}

TEST(ShardedSim, TracingIsDriverModeOnly) {
  const net::CostModel model = lan_model();
  sim::ShardedSim ssim(2, 7, net::Network::min_link_latency(model));
  net::Network net(ssim, model);
  EXPECT_THROW(net.set_tracing(true), common::MageError);
}

TEST(ShardedSim, CallSyncIsDriverModeOnly) {
  const net::CostModel model = lan_model();
  sim::ShardedSim ssim(2, 7, net::Network::min_link_latency(model));
  net::Network net(ssim, model);
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  rmi::Transport ta(net, a);
  rmi::Transport tb(net, b);
  tb.register_service("noop", [](common::NodeId, const serial::BufferChain&,
                                 rmi::Replier replier) {
    replier.ok({});
  });
  EXPECT_THROW((void)ta.call_sync(b, "noop", {}), common::MageError);
}

TEST(ShardedSim, SimulationAccessorIsDriverModeOnly) {
  const net::CostModel model = lan_model();
  sim::ShardedSim ssim(2, 7, net::Network::min_link_latency(model));
  net::Network net(ssim, model);
  EXPECT_THROW((void)net.simulation(), common::MageError);
  const auto a = net.add_node("a");
  EXPECT_EQ(&net.node_sim(a), &ssim.shard(0));
}

TEST(ShardedSim, CounterAggregatesAcrossShards) {
  sim::ShardedSim ssim(3, 7, 100);
  for (std::size_t i = 0; i < 3; ++i) {
    ssim.shard(i).stats().add("test.key", static_cast<std::int64_t>(i) + 1);
  }
  EXPECT_EQ(ssim.counter("test.key"), 6);
}

}  // namespace
}  // namespace mage
