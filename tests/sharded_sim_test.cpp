// Sharded-simulation contract tests.
//
// The two load-bearing properties of sim::ShardedSim:
//
//   1. determinism — one seed fully determines each node's event order at
//      ANY worker-thread count (the conservative windows are a pure
//      function of event timestamps; mailbox drains happen in fixed source
//      order at barriers);
//   2. the threading contract is enforced, not advisory — configuration
//      mutations while workers run, driver-blocking calls on shard
//      threads, and zero-lookahead construction all throw.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "net/affinity.hpp"
#include "net/cost_model.hpp"
#include "net/network.hpp"
#include "rmi/transport.hpp"
#include "serial/writer.hpp"
#include "sim/sharded.hpp"
#include "support/chaos_harness.hpp"

namespace mage {
namespace {

net::CostModel lan_model() {
  net::CostModel m = net::CostModel::zero();
  m.propagation_us = 200;
  m.per_message_cpu_us = 20;
  m.connection_setup_us = 100;
  m.local_invoke_us = 1;
  return m;
}

// One delivery observed by a node: (caller, seq, shard-local sim time).
using Observation = std::tuple<std::uint32_t, std::uint64_t, common::SimTime>;

// Runs a small all-to-all echo mesh on the sharded engine and returns each
// node's full observation log (order + timestamps).
std::vector<std::vector<Observation>> run_mesh(int nodes, int calls_per_link,
                                               int threads,
                                               std::uint64_t seed) {
  const net::CostModel model = lan_model();
  sim::ShardedSim ssim(static_cast<std::size_t>(nodes), seed,
                       net::Network::min_link_latency(model));
  net::Network net(ssim, model);

  std::vector<common::NodeId> ids;
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  for (int i = 0; i < nodes; ++i) {
    ids.push_back(net.add_node("n" + std::to_string(i)));
  }
  for (int i = 0; i < nodes; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
  }

  std::vector<std::vector<Observation>> observed(
      static_cast<std::size_t>(nodes) + 1);
  const common::VerbId echo = common::intern_verb("sharded.echo");
  for (int i = 0; i < nodes; ++i) {
    auto* log = &observed[ids[i].value()];
    auto& sim = net.node_sim(ids[i]);
    transports[i]->register_service(
        echo, [log, &sim](common::NodeId caller,
                          const serial::BufferChain& body,
                          rmi::Replier replier) {
          serial::ChainReader r(body);
          log->emplace_back(caller.value(), r.read_u64(), sim.now());
          replier.ok(body);
        });
  }

  struct Pipe {
    rmi::Transport* transport;
    common::NodeId dst;
    std::int64_t next = 0;
    std::int64_t* completed = nullptr;
  };
  std::vector<std::int64_t> completed(static_cast<std::size_t>(nodes) + 1, 0);
  std::vector<Pipe> pipes;
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      if (i != j) {
        pipes.push_back(
            Pipe{transports[i].get(), ids[j], 0, &completed[ids[i].value()]});
      }
    }
  }
  std::function<void(Pipe&)> next_call = [&](Pipe& p) {
    if (p.next >= calls_per_link) return;
    serial::Writer w(8);
    w.write_u64(static_cast<std::uint64_t>(p.next++));
    p.transport->call(p.dst, echo, w.take(), [&next_call, &p](rmi::CallResult r) {
      // Thrown on a worker thread; ShardedSim::run_until rethrows it on
      // the driver (gtest assertions are not thread-safe off-thread).
      if (!r.ok) throw common::MageError("echo failed: " + r.error);
      ++*p.completed;
      next_call(p);
    });
  };
  for (auto& p : pipes) {
    next_call(p);
    next_call(p);  // window of 2 outstanding per link
  }

  const std::int64_t total =
      static_cast<std::int64_t>(nodes) * (nodes - 1) * calls_per_link;
  const bool done = ssim.run_until(
      [&] {
        std::int64_t sum = 0;
        for (auto c : completed) sum += c;
        return sum == total;
      },
      threads);
  EXPECT_TRUE(done);
  return observed;
}

TEST(ShardedSim, SameSeedSameOrderAtAnyThreadCount) {
  const auto one = run_mesh(4, 30, 1, 99);
  const auto two = run_mesh(4, 30, 2, 99);
  const auto four = run_mesh(4, 30, 4, 99);
  ASSERT_EQ(one.size(), two.size());
  // Identical per-node event order AND identical shard-local timestamps:
  // the parallel execution replays the sequential one exactly.
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  // And the logs are non-trivial: every node saw every peer's full stream.
  for (std::size_t node = 1; node < one.size(); ++node) {
    EXPECT_EQ(one[node].size(), 3u * 30u);
  }
}

TEST(ShardedSim, DifferentSeedsDiverge) {
  // The per-shard RNG streams (and so loss decisions, had any been
  // configured) derive from the master seed; sanity-check the derivation
  // by observing shard RNGs directly.
  sim::ShardedSim a(2, 1, 100);
  sim::ShardedSim b(2, 2, 100);
  EXPECT_NE(a.shard(0).rng().next_below(1u << 30),
            b.shard(0).rng().next_below(1u << 30));
  EXPECT_NE(a.shard(0).rng().next_below(1u << 30),
            a.shard(1).rng().next_below(1u << 30));
}

TEST(ShardedSim, ZeroLookaheadRejected) {
  EXPECT_THROW(sim::ShardedSim(4, 7, 0), common::MageError);
}

TEST(ShardedSim, CostModelMustCoverLookahead) {
  sim::ShardedSim ssim(2, 7, 10'000);  // lookahead larger than any delay
  EXPECT_THROW(net::Network(ssim, net::CostModel::zero()),
               common::MageError);
}

TEST(ShardedSim, PostedEventsRunInTimeOrder) {
  sim::ShardedSim ssim(2, 7, 50);
  std::vector<int> order;
  // Driver-side posts before the run: both land in shard 1's mailbox and
  // must fire in time order regardless of post order.
  ssim.post(0, 1, 200, [&order] { order.push_back(2); });
  ssim.post(0, 1, 100, [&order] { order.push_back(1); });
  ssim.run_until_idle(2);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(ssim.shard(1).now(), 200);
}

TEST(ShardedSim, ConfigFrozenWhileWorkersRun) {
  const net::CostModel model = lan_model();
  sim::ShardedSim ssim(2, 7, net::Network::min_link_latency(model));
  net::Network net(ssim, model);
  net.add_node("a");
  net.add_node("b");
  // An event on a worker thread mutating global network config must throw;
  // the error surfaces through run_until on the driver.
  ssim.shard(0).schedule_after(10, [&net] { net.set_loss_rate(0.5); });
  EXPECT_THROW(ssim.run_until_idle(2), common::MageError);
  // Stopped again: configuration reopens.
  EXPECT_NO_THROW(net.set_loss_rate(0.0));
}

TEST(ShardedSim, TracingIsDriverModeOnly) {
  const net::CostModel model = lan_model();
  sim::ShardedSim ssim(2, 7, net::Network::min_link_latency(model));
  net::Network net(ssim, model);
  EXPECT_THROW(net.set_tracing(true), common::MageError);
}

TEST(ShardedSim, CallSyncIsDriverModeOnly) {
  const net::CostModel model = lan_model();
  sim::ShardedSim ssim(2, 7, net::Network::min_link_latency(model));
  net::Network net(ssim, model);
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  rmi::Transport ta(net, a);
  rmi::Transport tb(net, b);
  tb.register_service("noop", [](common::NodeId, const serial::BufferChain&,
                                 rmi::Replier replier) {
    replier.ok({});
  });
  EXPECT_THROW((void)ta.call_sync(b, "noop", {}), common::MageError);
}

TEST(ShardedSim, SimulationAccessorIsDriverModeOnly) {
  const net::CostModel model = lan_model();
  sim::ShardedSim ssim(2, 7, net::Network::min_link_latency(model));
  net::Network net(ssim, model);
  EXPECT_THROW((void)net.simulation(), common::MageError);
  const auto a = net.add_node("a");
  EXPECT_EQ(&net.node_sim(a), &ssim.shard(0));
}

TEST(ShardedSim, CounterAggregatesAcrossShards) {
  sim::ShardedSim ssim(3, 7, 100);
  for (std::size_t i = 0; i < 3; ++i) {
    ssim.shard(i).stats().add("test.key", static_cast<std::int64_t>(i) + 1);
  }
  EXPECT_EQ(ssim.counter("test.key"), 6);
}

// --- affinity mapping + per-pair lookahead (ISSUE 10) ----------------------
//
// The WAN mesh is the geometry the remapped engine exists for: `sites`
// clusters of co-located nodes chattering all-to-all inside each site,
// joined by 20ms hops that only site leaders cross.  These tests pin the
// tentpole contract on that mesh: per-node delivery order (AND shard-local
// timestamps) are a pure function of the seed — independent of the
// node:shard mapping, of uniform vs per-pair lookahead, and of the worker
// count — while the mapping + matrix change only how much the run pays in
// windows and barriers.

constexpr common::SimDuration kTestWanHopUs = 20'000;

struct WanTestParams {
  int nodes = 16;
  int sites = 4;
  int calls_per_link = 6;   // site-local links
  int cross_calls = 3;      // leader <-> leader links
  bool identity = false;    // one shard per node instead of one per site
  bool per_pair = true;     // refresh the lookahead matrix from the model
  int threads = 2;
  std::uint64_t seed = 1;
  bool chaos = false;       // apply a seeded fault schedule mid-run
};

struct WanTestResult {
  bool completed = false;
  std::int64_t windows = 0;
  std::int64_t faults_applied = 0;
  std::vector<std::vector<Observation>> observed;
};

WanTestResult run_wan_mesh(const WanTestParams& p) {
  const net::CostModel model = net::CostModel::wan_site();
  const int per_site = p.nodes / p.sites;
  const std::size_t shard_count = static_cast<std::size_t>(
      p.identity ? p.nodes : p.sites);

  std::vector<net::AffinityEdge> edges;
  for (int s = 0; s < p.sites; ++s) {
    for (int a = 0; a < per_site; ++a) {
      for (int b = a + 1; b < per_site; ++b) {
        edges.push_back({static_cast<std::size_t>(s * per_site + a),
                         static_cast<std::size_t>(s * per_site + b),
                         2.0 * p.calls_per_link});
      }
    }
  }
  for (int s = 0; s < p.sites; ++s) {
    for (int t = s + 1; t < p.sites; ++t) {
      edges.push_back({static_cast<std::size_t>(s * per_site),
                       static_cast<std::size_t>(t * per_site),
                       2.0 * p.cross_calls});
    }
  }
  std::vector<std::size_t> mapping;
  if (!p.identity) {
    mapping = net::affinity_mapping(static_cast<std::size_t>(p.nodes),
                                    shard_count, edges);
  }

  sim::ShardedSim ssim(shard_count, p.seed,
                       net::Network::min_link_latency(model));
  net::Network net(ssim, model, std::move(mapping));

  std::vector<common::NodeId> ids;
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  for (int i = 0; i < p.nodes; ++i) {
    ids.push_back(net.add_node("s" + std::to_string(i / per_site) + "n" +
                               std::to_string(i % per_site)));
  }
  for (int a = 0; a < p.nodes; ++a) {
    for (int b = 0; b < p.nodes; ++b) {
      if (a != b && a / per_site != b / per_site) {
        net.set_extra_latency(ids[a], ids[b], kTestWanHopUs);
      }
    }
  }
  for (int i = 0; i < p.nodes; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
  }
  if (p.per_pair) net.refresh_pair_lookaheads();

  WanTestResult result;
  result.observed.assign(static_cast<std::size_t>(p.nodes) + 1, {});
  const common::VerbId echo = common::intern_verb("wan.echo");
  for (int i = 0; i < p.nodes; ++i) {
    auto* log = &result.observed[ids[i].value()];
    auto& sim = net.node_sim(ids[i]);
    transports[i]->register_service(
        echo, [log, &sim](common::NodeId caller,
                          const serial::BufferChain& body,
                          rmi::Replier replier) {
          serial::ChainReader r(body);
          log->emplace_back(caller.value(), r.read_u64(), sim.now());
          replier.ok(body);
        });
  }

  struct Pipe {
    rmi::Transport* transport;
    common::NodeId dst;
    std::int64_t next = 0;
    std::int64_t total = 0;
    std::int64_t* completed = nullptr;
  };
  std::vector<std::int64_t> completed(static_cast<std::size_t>(p.nodes) + 1,
                                      0);
  std::vector<Pipe> pipes;
  std::int64_t total_calls = 0;
  for (int a = 0; a < p.nodes; ++a) {
    for (int b = 0; b < p.nodes; ++b) {
      if (a == b) continue;
      const bool same_site = a / per_site == b / per_site;
      const bool leaders = a % per_site == 0 && b % per_site == 0;
      if (!same_site && !leaders) continue;
      const std::int64_t calls = same_site ? p.calls_per_link : p.cross_calls;
      pipes.push_back(Pipe{transports[a].get(), ids[b], 0, calls,
                           &completed[ids[a].value()]});
      total_calls += calls;
    }
  }
  std::function<void(Pipe&)> next_call = [&](Pipe& pipe) {
    if (pipe.next >= pipe.total) return;
    serial::Writer w(8);
    w.write_u64(static_cast<std::uint64_t>(pipe.next++));
    pipe.transport->call(pipe.dst, echo, w.take(),
                         [&next_call, &pipe](rmi::CallResult r) {
                           if (!r.ok) {
                             throw common::MageError("wan echo failed: " +
                                                     r.error);
                           }
                           ++*pipe.completed;
                           next_call(pipe);
                         });
  };

  if (p.chaos) {
    testing::ChaosParams chaos_params;
    chaos_params.nodes = p.nodes;
    chaos_params.fault_t0_us = 5'000;
    chaos_params.fault_span_us = 60'000;  // faults overlap the 40ms WAN RTTs
    net.set_fifo_checks(true);
    net.set_fault_schedule(
        testing::random_fault_schedule(p.seed, chaos_params));
    // Horizon ticks keep virtual time moving past the last schedule entry
    // even if the storm drains early, so every fault is guaranteed to fire.
    const common::SimTime horizon =
        chaos_params.fault_t0_us + chaos_params.fault_span_us * 2;
    for (common::SimTime t = 5'000; t <= horizon; t += 5'000) {
      net.node_sim(ids[0]).schedule_at(t, [] {}, sim::Wake::No);
    }
  }

  for (auto& pipe : pipes) {
    next_call(pipe);
    next_call(pipe);  // window of 2 outstanding per link
  }
  result.completed = ssim.run_until(
      [&] {
        std::int64_t sum = 0;
        for (auto c : completed) sum += c;
        return sum == total_calls &&
               (!p.chaos || net.pending_fault_events() == 0);
      },
      p.threads, /*deadline=*/60'000'000);
  result.windows = ssim.windows();
  result.faults_applied = ssim.counter("net.faults_applied");
  return result;
}

TEST(ShardedAffinity, MappingDoesNotChangeDelivery) {
  // Clustered (one site per shard) vs identity (one node per shard): the
  // mapping decides which messages ride the intra-shard fast path, and it
  // must change NOTHING about what each node observes — order or clock.
  WanTestParams clustered;
  WanTestParams identity;
  identity.identity = true;
  const WanTestResult a = run_wan_mesh(clustered);
  const WanTestResult b = run_wan_mesh(identity);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.observed, b.observed);
  // The payoff the mapping exists for: site-local traffic stops bounding
  // the windows, so the clustered run syncs strictly less often.
  EXPECT_LT(a.windows, b.windows);
}

TEST(ShardedAffinity, PerPairLookaheadPreservesDelivery) {
  // The matrix widens windows (cross-shard links all carry the 20ms WAN
  // hop, so window_end can jump by it); it must not move any delivery.
  WanTestParams matrix;
  WanTestParams uniform;
  uniform.per_pair = false;
  const WanTestResult a = run_wan_mesh(matrix);
  const WanTestResult b = run_wan_mesh(uniform);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.observed, b.observed);
  // Uniform lookahead is the 60us model floor; the per-pair matrix rides
  // the 20ms hop, so the same run commits strictly fewer windows.  (The
  // gap is modest here only because the frontier jumps across empty
  // stretches of virtual time; the bench meshes show the full payoff.)
  EXPECT_LT(a.windows, b.windows);
}

TEST(ShardedAffinity, DeterministicAcrossWorkersAndSeeds) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    WanTestParams params;
    params.seed = seed;
    params.threads = 1;
    const WanTestResult one = run_wan_mesh(params);
    params.threads = 2;
    const WanTestResult two = run_wan_mesh(params);
    params.threads = 8;
    const WanTestResult eight = run_wan_mesh(params);
    ASSERT_TRUE(one.completed && two.completed && eight.completed);
    EXPECT_EQ(one.observed, two.observed) << "seed " << seed;
    EXPECT_EQ(one.observed, eight.observed) << "seed " << seed;
  }
}

TEST(ShardedAffinity, ChaosStormOnWanMesh) {
  // The 64-node WAN mesh under a seeded fault schedule (loss bursts, a
  // partition/heal, node crash/restarts): the full chaos machinery rides
  // the affinity mapping + lookahead matrix, and the run stays a pure
  // function of the seed at any worker count.
  WanTestParams params;
  params.nodes = 64;
  params.sites = 8;
  params.calls_per_link = 4;
  params.cross_calls = 2;
  params.chaos = true;
  params.seed = 7;
  params.threads = 1;
  const WanTestResult one = run_wan_mesh(params);
  params.threads = 2;
  const WanTestResult two = run_wan_mesh(params);
  ASSERT_TRUE(one.completed);
  ASSERT_TRUE(two.completed);
  EXPECT_GT(one.faults_applied, 0);
  EXPECT_EQ(one.faults_applied, two.faults_applied);
  EXPECT_EQ(one.observed, two.observed);
  // Exactly-once under chaos: every (caller, seq) executed exactly once on
  // its destination despite drops and retransmissions.
  for (std::size_t node = 1; node < one.observed.size(); ++node) {
    std::map<std::pair<std::uint32_t, std::uint64_t>, int> counts;
    for (const Observation& o : one.observed[node]) {
      ++counts[{std::get<0>(o), std::get<1>(o)}];
    }
    for (const auto& [key, count] : counts) {
      EXPECT_EQ(count, 1) << "node " << node << " caller " << key.first
                          << " seq " << key.second;
    }
  }
}

TEST(ShardedAffinity, MatrixValidationNamesTheBadLink) {
  // A matrix entry smaller than the fastest message the model can deliver
  // across that shard pair would let a post land inside a committed
  // window — the old engine deadlocked; the new one throws naming the
  // link before any worker starts.
  const net::CostModel model = net::CostModel::wan_site();
  sim::ShardedSim ssim(2, 7, net::Network::min_link_latency(model));
  net::Network net(ssim, model, std::vector<std::size_t>{0, 1});
  net.add_node("alpha");
  net.add_node("beta");
  net.refresh_pair_lookaheads();
  EXPECT_NO_THROW(net.validate_pair_lookaheads());
  // Hand-corrupt one direction: claim 1 second of lookahead on a link the
  // model can cross in ~60us.
  ssim.set_pair_lookahead(0, 1, 1'000'000);
  try {
    net.validate_pair_lookaheads();
    FAIL() << "validate_pair_lookaheads accepted an unsound matrix";
  } catch (const common::MageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("alpha"), std::string::npos) << what;
    EXPECT_NE(what.find("beta"), std::string::npos) << what;
  }
  // The setter itself rejects degenerate entries outright.
  EXPECT_THROW(ssim.set_pair_lookahead(0, 1, 0), common::MageError);
  EXPECT_THROW(ssim.set_pair_lookahead(0, 2, 100), common::MageError);
}

TEST(ShardedAffinity, MappingClustersHeavyEdgesWithinCapacity) {
  // 8 nodes, 2 shards: heavy edges inside {0..3} and {4..7}, light edges
  // across.  The greedy clusterer must recover the two groups exactly and
  // be a pure function of its inputs.
  std::vector<net::AffinityEdge> edges;
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      edges.push_back({a, b, 100.0});
      edges.push_back({a + 4, b + 4, 100.0});
    }
  }
  edges.push_back({0, 4, 1.0});
  const auto mapping = net::affinity_mapping(8, 2, edges);
  ASSERT_EQ(mapping.size(), 8u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(mapping[i], mapping[0]);
    EXPECT_EQ(mapping[i + 4], mapping[4]);
  }
  EXPECT_NE(mapping[0], mapping[4]);  // capacity 4 forbids one mega-group
  EXPECT_EQ(mapping, net::affinity_mapping(8, 2, edges));
  EXPECT_THROW(net::affinity_mapping(8, 0, {}), common::MageError);
  EXPECT_THROW(net::affinity_mapping(2, 2, {{0, 5, 1.0}}),
               common::MageError);
}

}  // namespace
}  // namespace mage
