// Tests for the hot-path spine: ref-counted zero-copy payloads (Buffer),
// scatter-gather body chains (BufferChain/ChainWriter/ChainReader),
// zero-copy Reader views, verb interning, the pooled cancellable EventQueue
// (determinism under interleaving), the open-addressed FlatMap64 behind the
// transport's receive path, completion wakeups, the move-only one-shot
// Replier contract — and the allocation budget: a steady-state send is
// exactly ONE heap allocation (counted via a replaced global operator new).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/verb.hpp"
#include "net/network.hpp"
#include "rmi/envelope.hpp"
#include "rmi/transport.hpp"
#include "serial/buffer.hpp"
#include "serial/chain.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

// Replaces global operator new/delete for this binary so steady-state tests
// can assert allocation budgets, not just copy budgets.
#include "common/alloc_counter.hpp"

namespace mage {
namespace {

using common::alloc_count;

// --- serial::Buffer ---------------------------------------------------------

TEST(Buffer, AdoptDoesNotCopy) {
  serial::Buffer::reset_copy_counters();
  std::vector<std::uint8_t> bytes(1024, 0x7F);
  const auto* data = bytes.data();
  serial::Buffer buf(std::move(bytes));
  EXPECT_EQ(buf.data(), data);  // same storage, just adopted
  EXPECT_EQ(buf.size(), 1024u);
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 0u);
}

TEST(Buffer, CopiesAreCounted) {
  serial::Buffer::reset_copy_counters();
  const std::vector<std::uint8_t> bytes(100, 1);
  auto copy = serial::Buffer::copy(bytes);
  EXPECT_EQ(copy.size(), 100u);
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 1u);
  EXPECT_EQ(serial::Buffer::deep_copy_bytes(), 100u);
}

TEST(Buffer, SliceSharesStorage) {
  serial::Buffer::reset_copy_counters();
  std::vector<std::uint8_t> bytes(256);
  std::iota(bytes.begin(), bytes.end(), 0);
  serial::Buffer buf(std::move(bytes));
  auto mid = buf.slice(16, 64);
  EXPECT_EQ(mid.size(), 64u);
  EXPECT_EQ(mid.data(), buf.data() + 16);  // a view, not a copy
  EXPECT_EQ(mid[0], 16);
  // Sub-slicing composes.
  auto inner = mid.slice(8, 8);
  EXPECT_EQ(inner.data(), buf.data() + 24);
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 0u);
}

TEST(Buffer, SliceOutlivesParentHandle) {
  serial::Buffer tail;
  {
    std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5};
    serial::Buffer buf(std::move(bytes));
    tail = buf.slice(3, 2);
  }  // parent handle gone; refcount keeps the storage alive
  EXPECT_EQ(tail, (std::vector<std::uint8_t>{4, 5}));
}

TEST(Buffer, SliceOutOfBoundsThrows) {
  serial::Buffer buf(std::vector<std::uint8_t>(8));
  EXPECT_THROW((void)buf.slice(4, 8), common::SerializationError);
  EXPECT_THROW((void)buf.slice(9, 0), common::SerializationError);
  EXPECT_NO_THROW((void)buf.slice(8, 0));
}

TEST(Buffer, EqualityIsByteWise) {
  serial::Buffer a{1, 2, 3};
  serial::Buffer b{1, 2, 3};
  serial::Buffer c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Writer, TakeIsSingleAllocation) {
  // The whole point of the shared-array Writer: reserve + build + take is
  // one make_shared<uint8_t[]> block, no vector, no separate control block.
  const auto before = alloc_count();
  serial::Writer w(64);
  w.write_u64(0x1122334455667788ull);
  w.write_u32(7);
  serial::Buffer out = w.take();
  EXPECT_EQ(alloc_count() - before, 1u);
  EXPECT_EQ(out.size(), 12u);
}

// --- scatter-gather chains ---------------------------------------------------

TEST(BufferChain, SingleFragmentImplicitConversion) {
  serial::Buffer payload{1, 2, 3};
  serial::BufferChain chain = payload;
  EXPECT_EQ(chain.fragments(), 1u);
  EXPECT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain, payload);
  EXPECT_EQ(chain.flatten().data(), payload.data());  // shares storage
}

TEST(BufferChain, AppendAndLogicalEquality) {
  serial::BufferChain chain;
  chain.append(serial::Buffer{1, 2});
  chain.append(serial::Buffer{});  // empty fragment is legal
  chain.append(serial::Buffer{3, 4, 5});
  EXPECT_EQ(chain.fragments(), 3u);
  EXPECT_EQ(chain.size(), 5u);
  EXPECT_EQ(chain, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  // Equality is over the logical stream, not the fragmentation.
  serial::BufferChain other = serial::Buffer{1, 2, 3, 4, 5};
  EXPECT_TRUE(chain == other);
}

TEST(BufferChain, FragmentCapIsEnforced) {
  serial::BufferChain chain;
  for (std::size_t i = 0; i < serial::BufferChain::kMaxFragments; ++i) {
    chain.append(serial::Buffer{1});
  }
  EXPECT_THROW(chain.append(serial::Buffer{1}), common::SerializationError);
}

TEST(BufferChain, FlattenGathersAndCounts) {
  serial::BufferChain chain;
  chain.append(serial::Buffer{1, 2});
  chain.append(serial::Buffer{3});
  serial::Buffer::reset_copy_counters();
  EXPECT_EQ(chain.flatten(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 1u);
  EXPECT_EQ(serial::Buffer::deep_copy_bytes(), 3u);
}

TEST(ChainWriter, PayloadRidesAsFragmentWithoutCopy) {
  const serial::Buffer args(std::vector<std::uint8_t>(512, 0xAB));
  serial::Buffer::reset_copy_counters();

  serial::ChainWriter w;
  w.write_string("component");
  w.write_string("method");
  w.append_payload(args);
  serial::BufferChain body = w.take();

  ASSERT_EQ(body.fragments(), 2u);
  EXPECT_EQ(body.fragment(1).data(), args.data());  // spliced, not copied
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 0u);

  // The logical stream is byte-identical to the copying encoder's output.
  serial::Writer flat;
  flat.write_string("component");
  flat.write_string("method");
  flat.write_bytes(args.span());
  EXPECT_EQ(body, flat.take());
}

TEST(ChainWriter, FieldsAfterPayloadGetTheirOwnFragment) {
  const serial::Buffer args{9, 9};
  serial::ChainWriter w;
  w.write_string("obj");
  w.append_payload(args);
  w.write_u32(1234);  // trailing field, e.g. ExecRequest::class_source
  serial::BufferChain body = w.take();
  ASSERT_EQ(body.fragments(), 3u);

  serial::ChainReader r(body);
  EXPECT_EQ(r.read_string(), "obj");
  serial::Buffer::reset_copy_counters();
  serial::Buffer nested = r.read_bytes();
  EXPECT_EQ(nested.data(), args.data());  // zero-copy slice of the fragment
  EXPECT_EQ(r.read_u32(), 1234u);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 0u);
}

TEST(ChainWriter, EmptyPayloadSpendsNoFragment) {
  serial::ChainWriter w;
  w.write_u8(1);
  w.append_payload({});
  w.write_u8(2);
  serial::BufferChain body = w.take();
  EXPECT_EQ(body.fragments(), 1u);  // prefix+suffix coalesce
  serial::ChainReader r(body);
  EXPECT_EQ(r.read_u8(), 1u);
  EXPECT_TRUE(r.read_bytes().empty());
  EXPECT_EQ(r.read_u8(), 2u);
}

TEST(ChainReader, ReadsAcrossArbitraryFragmentBoundaries) {
  // The wire contract says fragmentation is framing, not encoding: a reader
  // must reproduce the logical stream however it was split — including a
  // primitive or block straddling fragments (the counted gather path).
  serial::Writer flat;
  flat.write_u32(0xDEADBEEF);
  flat.write_string("split-me");
  flat.write_bytes(std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6});
  flat.write_u64(42);
  const serial::Buffer bytes = flat.take();

  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    serial::BufferChain chain;
    chain.append(bytes.slice(0, cut));
    chain.append(bytes.slice(cut, bytes.size() - cut));
    serial::ChainReader r(chain);
    EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.read_string(), "split-me");
    EXPECT_EQ(r.read_bytes(), (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6}));
    EXPECT_EQ(r.read_u64(), 42u);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(ChainReader, TruncationThrowsNotReads) {
  serial::BufferChain chain;
  chain.append(serial::Buffer{1, 2, 3});
  serial::ChainReader r(chain);
  EXPECT_THROW((void)r.read_u32(), common::SerializationError);
}

// --- scatter-gather envelopes ------------------------------------------------

TEST(EnvelopeChain, MultiFragmentRoundTrip) {
  rmi::Envelope e;
  e.kind = rmi::EnvelopeKind::Request;
  e.request_id = common::RequestId{7};
  e.verb = common::intern_verb("hp.frag");
  e.body.append(serial::Buffer{1, 2});
  e.body.append(serial::Buffer{3, 4, 5});
  e.body.append(serial::Buffer{6});

  // Scatter-gather form: fragments pass through untouched.
  const auto header = e.encode_header();
  const auto decoded = rmi::Envelope::decode(header, e.body);
  EXPECT_EQ(decoded.request_id, common::RequestId{7});
  ASSERT_EQ(decoded.body.fragments(), 3u);
  EXPECT_EQ(decoded.body.fragment(1).data(), e.body.fragment(1).data());

  // Flat form: the concatenation round-trips, fragment structure preserved.
  const auto flat = e.encode();
  const auto from_flat = rmi::Envelope::decode(flat);
  ASSERT_EQ(from_flat.body.fragments(), 3u);
  EXPECT_EQ(from_flat.body, e.body);
  EXPECT_EQ(from_flat.body.fragment(0), (std::vector<std::uint8_t>{1, 2}));
}

TEST(EnvelopeChain, EmptyFragmentRoundTrips) {
  rmi::Envelope e;
  e.kind = rmi::EnvelopeKind::Reply;
  e.request_id = common::RequestId{8};
  e.verb = common::intern_verb("hp.frag");
  e.body.append(serial::Buffer{1});
  e.body.append(serial::Buffer{});  // explicit zero-size fragment
  const auto decoded = rmi::Envelope::decode(e.encode());
  ASSERT_EQ(decoded.body.fragments(), 2u);
  EXPECT_EQ(decoded.body.fragment(1).size(), 0u);
  EXPECT_EQ(decoded.body, (std::vector<std::uint8_t>{1}));
}

TEST(EnvelopeChain, FragmentCountMismatchThrows) {
  rmi::Envelope e;
  e.kind = rmi::EnvelopeKind::Request;
  e.request_id = common::RequestId{9};
  e.verb = common::intern_verb("hp.frag");
  e.body.append(serial::Buffer{1, 2});
  const auto header = e.encode_header();
  serial::BufferChain wrong;
  wrong.append(serial::Buffer{1});
  wrong.append(serial::Buffer{2});
  EXPECT_THROW((void)rmi::Envelope::decode(header, wrong),
               common::SerializationError);
}

// --- zero-copy Reader views -------------------------------------------------

TEST(ReaderViews, RoundTripPropertyWithZeroCopies) {
  // Property test: random nested payloads survive a write/read round trip,
  // and reading through a Buffer-backed Reader never deep-copies.
  common::Rng rng(1234);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> blob(rng.next_below(2048));
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_below(256));
    const std::string text = "round-" + std::to_string(round);

    serial::Writer w(16 + blob.size() + text.size());
    w.write_string(text);
    w.write_bytes(blob);
    w.write_u32(0xDEADBEEF);
    serial::Buffer encoded = w.take();

    serial::Buffer::reset_copy_counters();
    serial::Reader r(encoded);
    const std::string_view view = r.read_view();
    EXPECT_EQ(view, text);
    // The view aliases the encoded buffer, no allocation or copy.
    EXPECT_GE(reinterpret_cast<const std::uint8_t*>(view.data()),
              encoded.data());
    serial::Buffer nested = r.read_bytes();
    EXPECT_EQ(nested, blob);
    if (!nested.empty()) {
      EXPECT_GE(nested.data(), encoded.data());  // shared slice
      EXPECT_LT(nested.data(), encoded.data() + encoded.size());
    }
    EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
    EXPECT_TRUE(r.at_end());
    EXPECT_EQ(serial::Buffer::deep_copy_count(), 0u);
  }
}

TEST(ReaderViews, SpanBackedReaderCopiesNestedBytes) {
  serial::Writer w;
  w.write_bytes(std::vector<std::uint8_t>{1, 2, 3});
  const auto encoded = w.take();

  serial::Buffer::reset_copy_counters();
  serial::Reader r(encoded.span());  // no owner: must deep-copy to be safe
  auto nested = r.read_bytes();
  EXPECT_EQ(nested, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 1u);
}

TEST(Writer, OversizedStringThrows) {
  // The length prefix is u32; a silent truncation used to write a wrong
  // length and corrupt the stream.  The size check fires before any bytes
  // are touched, so a fabricated oversized view is safe to pass.
  serial::Writer w;
  const char c = 'x';
  const std::string_view huge(&c, (1ull << 32) + 1);
  EXPECT_THROW(w.write_string(huge), common::SerializationError);
  EXPECT_EQ(w.size(), 0u);  // nothing was written
}

TEST(Writer, ReservePreallocates) {
  serial::Writer w(4096);
  const std::vector<std::uint8_t> chunk(4096, 9);
  w.write_raw(chunk.data(), chunk.size());
  EXPECT_EQ(w.size(), 4096u);
  EXPECT_EQ(w.take().size(), 4096u);
}

// --- verb interning ---------------------------------------------------------

TEST(VerbInterning, SameSpellingSameId) {
  const auto a = common::intern_verb("hotpath.test.verb");
  const auto b = common::intern_verb("hotpath.test.verb");
  const auto c = common::intern_verb("hotpath.test.other");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(common::verb_name(a), "hotpath.test.verb");
  EXPECT_EQ(common::verb_calls_stat(a), "rmi.calls.hotpath.test.verb");
}

TEST(VerbInterning, InvalidIdHasPlaceholderName) {
  EXPECT_EQ(common::verb_name(common::VerbId{}), "<invalid-verb>");
}

// --- FlatMap64 --------------------------------------------------------------

TEST(FlatMap64, InsertFindErase) {
  common::FlatMap64<int> map;
  auto [v, inserted] = map.try_emplace(42);
  EXPECT_TRUE(inserted);
  *v = 7;
  EXPECT_EQ(*map.find(42), 7);
  EXPECT_EQ(map.find(43), nullptr);
  auto [again, fresh] = map.try_emplace(42);
  EXPECT_FALSE(fresh);
  EXPECT_EQ(*again, 7);
  EXPECT_TRUE(map.erase(42));
  EXPECT_FALSE(map.erase(42));
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_EQ(map.size(), 0u);
}

TEST(FlatMap64, MatchesReferenceUnderChurn) {
  // Randomized differential test against unordered_map: inserts, erases,
  // lookups — growth, probe wraparound, and backward-shift deletion all get
  // exercised (keys are drawn from a small range to force collisions).
  common::FlatMap64<std::uint64_t> map(16);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  common::Rng rng(99);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t key = 1 + rng.next_below(512);
    switch (rng.next_below(3)) {
      case 0: {  // insert/overwrite
        const std::uint64_t value = rng.next_below(1u << 30);
        *map.try_emplace(key).first = value;
        ref[key] = value;
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
        break;
      }
      default: {  // lookup
        auto* got = map.find(key);
        auto it = ref.find(key);
        ASSERT_EQ(got != nullptr, it != ref.end());
        if (got != nullptr) {
          EXPECT_EQ(*got, it->second);
        }
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  for (const auto& [key, value] : ref) {
    auto* got = map.find(key);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, value);
  }
}

TEST(FlatMap64, ReservePinsCapacity) {
  common::FlatMap64<std::uint64_t> map;
  map.reserve(1000);
  const auto before = alloc_count();
  for (std::uint64_t k = 1; k <= 1000; ++k) *map.try_emplace(k).first = k;
  EXPECT_EQ(alloc_count(), before);  // no growth, no per-node allocation
}

// --- pooled EventQueue ------------------------------------------------------

TEST(PooledEventQueue, SameInstantFifoUnderInterleavedScheduleAndPop) {
  // Determinism regression: events at one instant fire in scheduling order
  // even when schedules and pops interleave (pops recycle slab slots, which
  // must not perturb the (time, seq) order).
  sim::EventQueue q;
  std::vector<int> fired;
  auto make = [&fired](int tag) { return [&fired, tag] { fired.push_back(tag); }; };

  q.schedule(5, make(0));
  q.schedule(5, make(1));
  common::SimTime at = 0;
  q.pop(at)();  // fires 0, frees its slot
  q.schedule(5, make(2));  // reuses the freed slot
  q.schedule(5, make(3));
  q.pop(at)();
  q.schedule(5, make(4));
  while (!q.empty()) q.pop(at)();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(at, 5);
}

TEST(PooledEventQueue, EarlierTimeBeatsEarlierSeq) {
  sim::EventQueue q;
  std::vector<int> fired;
  q.schedule(10, [&] { fired.push_back(10); });
  q.schedule(3, [&] { fired.push_back(3); });
  q.schedule(7, [&] { fired.push_back(7); });
  common::SimTime at = 0;
  while (!q.empty()) q.pop(at)();
  EXPECT_EQ(fired, (std::vector<int>{3, 7, 10}));
}

TEST(PooledEventQueue, SlabIsReusedNotGrown) {
  sim::EventQueue q;
  common::SimTime at = 0;
  // Steady state: one event in flight at a time -> one pooled node, ever.
  for (int i = 0; i < 10'000; ++i) {
    q.schedule(i, [] {});
    (void)q.pop(at);
  }
  EXPECT_EQ(q.pool_size(), 1u);
}

TEST(PooledEventQueue, CancelPreventsFiring) {
  sim::EventQueue q;
  bool fired = false;
  const auto id = q.schedule(1, [&fired] { fired = true; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  EXPECT_FALSE(fired);
}

TEST(PooledEventQueue, CancelledSlotReuseDoesNotConfuseCancel) {
  sim::EventQueue q;
  const auto id = q.schedule(1, [] {});
  ASSERT_TRUE(q.cancel(id));
  // The slot is recycled for a new event; the stale id must not cancel it.
  bool fired = false;
  q.schedule(2, [&fired] { fired = true; });
  EXPECT_FALSE(q.cancel(id));
  common::SimTime at = 0;
  q.pop(at)();
  EXPECT_TRUE(fired);
  EXPECT_EQ(at, 2);
}

TEST(PooledEventQueue, MassCancellationCompactsAndPreservesOrder) {
  sim::EventQueue q;
  std::vector<int> fired;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(100, [&fired, i] { fired.push_back(i); }));
  }
  // Cancel every odd event; survivors must still fire in FIFO order.
  for (int i = 1; i < 1000; i += 2) EXPECT_TRUE(q.cancel(ids[i]));
  EXPECT_EQ(q.size(), 500u);
  common::SimTime at = 0;
  while (!q.empty()) q.pop(at)();
  ASSERT_EQ(fired.size(), 500u);
  for (std::size_t i = 0; i + 1 < fired.size(); ++i) {
    EXPECT_LT(fired[i], fired[i + 1]);
  }
}

TEST(PooledEventQueue, MoveOnlyActionsAreSupported) {
  // The point of UniqueFunction: actions may capture move-only state.
  sim::EventQueue q;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  q.schedule(1, [p = std::move(payload), &seen] { seen = *p; });
  common::SimTime at = 0;
  q.pop(at)();
  EXPECT_EQ(seen, 42);
}

// --- completion wakeups -----------------------------------------------------

TEST(CompletionWakeups, NonWakingEventsStillSatisfyRunUntilOnDrain) {
  // A predicate flipped by a Wake::No event is caught by the final check
  // when the queue drains — run_until never reports false while done()
  // holds.
  sim::Simulation sim;
  bool flag = false;
  sim.schedule_after(5, [&flag] { flag = true; }, sim::Wake::No);
  EXPECT_TRUE(sim.run_until([&flag] { return flag; }));
}

TEST(CompletionWakeups, ExplicitWakeTriggersPredicateCheck) {
  sim::Simulation sim;
  bool flag = false;
  sim.schedule_after(5,
                     [&] {
                       flag = true;
                       sim.wake();
                     },
                     sim::Wake::No);
  // A later event keeps the queue non-empty; the explicit wake must stop
  // the loop at t=5, not at drain.
  sim.schedule_after(500, [] {}, sim::Wake::No);
  EXPECT_TRUE(sim.run_until([&flag] { return flag; }));
  EXPECT_EQ(sim.now(), 5);
}

// --- transport zero-copy + Replier contract ---------------------------------

struct HotpathRmiFixture : ::testing::Test {
  sim::Simulation sim{99};
  net::Network net{sim, net::CostModel::zero()};
  common::NodeId a = net.add_node("a");
  common::NodeId b = net.add_node("b");
  rmi::Transport ta{net, a};
  rmi::Transport tb{net, b};
};

TEST_F(HotpathRmiFixture, SteadyStateCallIsZeroPayloadCopies) {
  const auto echo = common::intern_verb("hp.echo");
  tb.register_service(echo,
                      [](common::NodeId, const serial::BufferChain& body,
                         rmi::Replier replier) { replier.ok(body); });
  const serial::Buffer payload(std::vector<std::uint8_t>(2048, 0x3C));
  (void)ta.call_sync(b, echo, payload);  // warm connection

  serial::Buffer::reset_copy_counters();
  for (int i = 0; i < 100; ++i) {
    auto result = ta.call_sync(b, echo, payload);
    ASSERT_EQ(result.size(), payload.size());
  }
  // The whole spine — envelope, network, retransmission state, reply cache,
  // CallResult — moved refcounts, never bytes.
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 0u);
}

TEST(HotpathAllocation, SteadyStateSendIsExactlyOneAllocation) {
  // The allocation budget the spine promises: a steady-state send costs ONE
  // heap allocation — the envelope header block.  A call round trip is two
  // sends (request + reply), so a call is exactly two allocations: pending
  // calls and the reply-cache index live in pre-sized flat tables, the
  // entries ring is full and overwritten in place, event nodes come from
  // the pooled slab, captures stay inline in UniqueFunction storage, and
  // the payload travels by refcount.
  //
  // A small reply cache, warmed past its capacity, puts the measured loop
  // in the long-run regime — ring wrapped, continuously evicting — which
  // is exactly where the budget must hold.
  constexpr std::size_t kCacheCapacity = 64;
  sim::Simulation sim{77};
  net::Network net{sim, net::CostModel::zero()};
  const common::NodeId a = net.add_node("a");
  const common::NodeId b = net.add_node("b");
  rmi::Transport ta{net, a, kCacheCapacity};
  rmi::Transport tb{net, b, kCacheCapacity};

  const auto echo = common::intern_verb("hp.alloc");
  tb.register_service(echo,
                      [](common::NodeId, const serial::BufferChain& body,
                         rmi::Replier replier) { replier.ok(body); });
  const serial::Buffer payload(std::vector<std::uint8_t>(512, 0x11));
  // Warm-up: connection setup, stats handles, event slab, verb counters,
  // and 2x the ring capacity so both ends' entry rings have wrapped.
  for (std::size_t i = 0; i < 2 * kCacheCapacity; ++i) {
    (void)ta.call_sync(b, echo, payload);
  }
  ASSERT_GT(sim.stats().counter("rmi.reply_cache_evictions"), 0);

  constexpr std::uint64_t kCalls = 100;
  const auto before = alloc_count();
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    (void)ta.call_sync(b, echo, payload);
  }
  EXPECT_EQ(alloc_count() - before, 2 * kCalls);
}

TEST_F(HotpathRmiFixture, ScatterGatherBodyTravelsIntact) {
  // A multi-fragment body (the proto layer's [fields, payload] shape)
  // arrives as the same fragments, payload storage shared end to end.
  const auto probe = common::intern_verb("hp.sg");
  const serial::Buffer args(std::vector<std::uint8_t>(256, 0x42));
  const std::uint8_t* service_saw = nullptr;
  std::size_t service_fragments = 0;
  tb.register_service(probe, [&](common::NodeId,
                                 const serial::BufferChain& body,
                                 rmi::Replier replier) {
    service_fragments = body.fragments();
    serial::ChainReader r(body);
    EXPECT_EQ(r.read_string(), "target");
    serial::Buffer nested = r.read_bytes();
    service_saw = nested.data();
    replier.ok(nested);  // bounce the payload back, still by refcount
  });

  serial::ChainWriter w;
  w.write_string("target");
  w.append_payload(args);

  serial::Buffer::reset_copy_counters();
  auto result = ta.call_sync(b, probe, w.take());
  EXPECT_EQ(service_fragments, 2u);
  EXPECT_EQ(service_saw, args.data());  // zero-copy through the whole spine
  EXPECT_EQ(result, args);
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 0u);
}

TEST_F(HotpathRmiFixture, EchoedPayloadAliasesTheRequestBuffer) {
  // Loopback-free proof that the body travels by reference: the service's
  // view of the body is the same storage the caller serialized.
  const auto probe = common::intern_verb("hp.probe");
  const std::uint8_t* service_saw = nullptr;
  tb.register_service(probe, [&service_saw](common::NodeId,
                                            const serial::BufferChain& body,
                                            rmi::Replier replier) {
    service_saw = body.fragment(0).data();
    replier.ok({});
  });
  const serial::Buffer payload(std::vector<std::uint8_t>(64, 1));
  (void)ta.call_sync(b, probe, payload);
  EXPECT_EQ(service_saw, payload.data());
}

TEST_F(HotpathRmiFixture, ReplierIsOneShot) {
  const auto verb = common::intern_verb("hp.double");
  std::optional<rmi::Replier> parked;
  tb.register_service(verb, [&parked](common::NodeId,
                                      const serial::BufferChain&,
                                      rmi::Replier replier) {
    parked = std::move(replier);
  });
  std::optional<rmi::CallResult> result;
  ta.call(b, verb, {}, [&result](rmi::CallResult r) { result = std::move(r); });
  sim.run_until([&parked] { return parked.has_value(); });
  ASSERT_TRUE(parked->armed());
  parked->ok({});
  EXPECT_FALSE(parked->armed());
  EXPECT_THROW(parked->ok({}), common::MageError);  // double reply
  EXPECT_THROW(parked->error("again"), common::MageError);
  sim.run_until([&result] { return result.has_value(); });
  EXPECT_TRUE(result->ok);
}

TEST_F(HotpathRmiFixture, MovedFromReplierThrows) {
  rmi::Replier from;
  EXPECT_THROW(from.ok({}), common::MageError);  // default-constructed
  const auto verb = common::intern_verb("hp.moved");
  tb.register_service(verb, [](common::NodeId, const serial::BufferChain&,
                               rmi::Replier replier) {
    rmi::Replier stolen = std::move(replier);
    EXPECT_FALSE(replier.armed());                  // NOLINT(bugprone-use-after-move)
    EXPECT_THROW(replier.ok({}), common::MageError);  // NOLINT
    stolen.ok({});
  });
  EXPECT_NO_THROW((void)ta.call_sync(b, verb, {}));
}

TEST_F(HotpathRmiFixture, RetryTimersDoNotAccumulate) {
  // Completed calls cancel their retry timers, so a storm leaves the event
  // queue empty instead of thousands of dead timers deep.
  const auto verb = common::intern_verb("hp.clean");
  tb.register_service(verb, [](common::NodeId, const serial::BufferChain&,
                               rmi::Replier replier) { replier.ok({}); });
  for (int i = 0; i < 500; ++i) (void)ta.call_sync(b, verb, {});
  EXPECT_EQ(sim.stats().counter("rmi.calls"), 500);
  // Everything completed, so every retry timer was cancelled: draining the
  // queue must not advance the clock anywhere near the first retry timeout
  // (un-cancelled timers would drag now() to >= 150'000).
  sim.run_until_idle();
  EXPECT_LT(sim.now(), 150'000);
  EXPECT_EQ(sim.stats().counter("rmi.retransmissions"), 0);
}

TEST_F(HotpathRmiFixture, RunUntilChecksPredicatesOnCompletionsNotEvents) {
  // Completion wakeups: a call_sync round trip runs ~5 internal events but
  // only wakes the predicate at user-code boundaries (service dispatch,
  // callback), so predicate checks stay a small multiple of calls instead
  // of tracking event count.
  const auto verb = common::intern_verb("hp.wake");
  tb.register_service(verb, [](common::NodeId, const serial::BufferChain&,
                               rmi::Replier replier) { replier.ok({}); });
  (void)ta.call_sync(b, verb, {});  // warm
  const auto checks_before = sim.stats().counter("sim.predicate_checks");
  for (int i = 0; i < 100; ++i) (void)ta.call_sync(b, verb, {});
  const auto checks = sim.stats().counter("sim.predicate_checks") - checks_before;
  EXPECT_LE(checks, 100 * 4);
}

}  // namespace
}  // namespace mage
