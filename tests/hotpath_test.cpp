// Tests for the hot-path spine introduced with serial::Buffer: ref-counted
// zero-copy payloads, zero-copy Reader views, verb interning, the pooled
// cancellable EventQueue (determinism under interleaving), and the
// move-only one-shot Replier contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/verb.hpp"
#include "net/network.hpp"
#include "rmi/transport.hpp"
#include "serial/buffer.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace mage {
namespace {

// --- serial::Buffer ---------------------------------------------------------

TEST(Buffer, AdoptDoesNotCopy) {
  serial::Buffer::reset_copy_counters();
  std::vector<std::uint8_t> bytes(1024, 0x7F);
  const auto* data = bytes.data();
  serial::Buffer buf(std::move(bytes));
  EXPECT_EQ(buf.data(), data);  // same storage, just adopted
  EXPECT_EQ(buf.size(), 1024u);
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 0u);
}

TEST(Buffer, CopiesAreCounted) {
  serial::Buffer::reset_copy_counters();
  const std::vector<std::uint8_t> bytes(100, 1);
  auto copy = serial::Buffer::copy(bytes);
  EXPECT_EQ(copy.size(), 100u);
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 1u);
  EXPECT_EQ(serial::Buffer::deep_copy_bytes(), 100u);
}

TEST(Buffer, SliceSharesStorage) {
  serial::Buffer::reset_copy_counters();
  std::vector<std::uint8_t> bytes(256);
  std::iota(bytes.begin(), bytes.end(), 0);
  serial::Buffer buf(std::move(bytes));
  auto mid = buf.slice(16, 64);
  EXPECT_EQ(mid.size(), 64u);
  EXPECT_EQ(mid.data(), buf.data() + 16);  // a view, not a copy
  EXPECT_EQ(mid[0], 16);
  // Sub-slicing composes.
  auto inner = mid.slice(8, 8);
  EXPECT_EQ(inner.data(), buf.data() + 24);
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 0u);
}

TEST(Buffer, SliceOutlivesParentHandle) {
  serial::Buffer tail;
  {
    std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5};
    serial::Buffer buf(std::move(bytes));
    tail = buf.slice(3, 2);
  }  // parent handle gone; refcount keeps the storage alive
  EXPECT_EQ(tail, (std::vector<std::uint8_t>{4, 5}));
}

TEST(Buffer, SliceOutOfBoundsThrows) {
  serial::Buffer buf(std::vector<std::uint8_t>(8));
  EXPECT_THROW((void)buf.slice(4, 8), common::SerializationError);
  EXPECT_THROW((void)buf.slice(9, 0), common::SerializationError);
  EXPECT_NO_THROW((void)buf.slice(8, 0));
}

TEST(Buffer, EqualityIsByteWise) {
  serial::Buffer a{1, 2, 3};
  serial::Buffer b{1, 2, 3};
  serial::Buffer c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a, (std::vector<std::uint8_t>{1, 2, 3}));
}

// --- zero-copy Reader views -------------------------------------------------

TEST(ReaderViews, RoundTripPropertyWithZeroCopies) {
  // Property test: random nested payloads survive a write/read round trip,
  // and reading through a Buffer-backed Reader never deep-copies.
  common::Rng rng(1234);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> blob(rng.next_below(2048));
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_below(256));
    const std::string text = "round-" + std::to_string(round);

    serial::Writer w(16 + blob.size() + text.size());
    w.write_string(text);
    w.write_bytes(blob);
    w.write_u32(0xDEADBEEF);
    serial::Buffer encoded = w.take();

    serial::Buffer::reset_copy_counters();
    serial::Reader r(encoded);
    const std::string_view view = r.read_view();
    EXPECT_EQ(view, text);
    // The view aliases the encoded buffer, no allocation or copy.
    EXPECT_GE(reinterpret_cast<const std::uint8_t*>(view.data()),
              encoded.data());
    serial::Buffer nested = r.read_bytes();
    EXPECT_EQ(nested, blob);
    if (!nested.empty()) {
      EXPECT_GE(nested.data(), encoded.data());  // shared slice
      EXPECT_LT(nested.data(), encoded.data() + encoded.size());
    }
    EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
    EXPECT_TRUE(r.at_end());
    EXPECT_EQ(serial::Buffer::deep_copy_count(), 0u);
  }
}

TEST(ReaderViews, SpanBackedReaderCopiesNestedBytes) {
  serial::Writer w;
  w.write_bytes(std::vector<std::uint8_t>{1, 2, 3});
  const auto encoded = w.take();

  serial::Buffer::reset_copy_counters();
  serial::Reader r(encoded.span());  // no owner: must deep-copy to be safe
  auto nested = r.read_bytes();
  EXPECT_EQ(nested, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 1u);
}

TEST(Writer, OversizedStringThrows) {
  // The length prefix is u32; a silent truncation used to write a wrong
  // length and corrupt the stream.  The size check fires before any bytes
  // are touched, so a fabricated oversized view is safe to pass.
  serial::Writer w;
  const char c = 'x';
  const std::string_view huge(&c, (1ull << 32) + 1);
  EXPECT_THROW(w.write_string(huge), common::SerializationError);
  EXPECT_EQ(w.size(), 0u);  // nothing was written
}

TEST(Writer, ReservePreallocates) {
  serial::Writer w(4096);
  const std::vector<std::uint8_t> chunk(4096, 9);
  w.write_raw(chunk.data(), chunk.size());
  EXPECT_EQ(w.size(), 4096u);
  EXPECT_EQ(w.take().size(), 4096u);
}

// --- verb interning ---------------------------------------------------------

TEST(VerbInterning, SameSpellingSameId) {
  const auto a = common::intern_verb("hotpath.test.verb");
  const auto b = common::intern_verb("hotpath.test.verb");
  const auto c = common::intern_verb("hotpath.test.other");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(common::verb_name(a), "hotpath.test.verb");
  EXPECT_EQ(common::verb_calls_stat(a), "rmi.calls.hotpath.test.verb");
}

TEST(VerbInterning, InvalidIdHasPlaceholderName) {
  EXPECT_EQ(common::verb_name(common::VerbId{}), "<invalid-verb>");
}

// --- pooled EventQueue ------------------------------------------------------

TEST(PooledEventQueue, SameInstantFifoUnderInterleavedScheduleAndPop) {
  // Determinism regression: events at one instant fire in scheduling order
  // even when schedules and pops interleave (pops recycle slab slots, which
  // must not perturb the (time, seq) order).
  sim::EventQueue q;
  std::vector<int> fired;
  auto make = [&fired](int tag) { return [&fired, tag] { fired.push_back(tag); }; };

  q.schedule(5, make(0));
  q.schedule(5, make(1));
  common::SimTime at = 0;
  q.pop(at)();  // fires 0, frees its slot
  q.schedule(5, make(2));  // reuses the freed slot
  q.schedule(5, make(3));
  q.pop(at)();
  q.schedule(5, make(4));
  while (!q.empty()) q.pop(at)();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(at, 5);
}

TEST(PooledEventQueue, EarlierTimeBeatsEarlierSeq) {
  sim::EventQueue q;
  std::vector<int> fired;
  q.schedule(10, [&] { fired.push_back(10); });
  q.schedule(3, [&] { fired.push_back(3); });
  q.schedule(7, [&] { fired.push_back(7); });
  common::SimTime at = 0;
  while (!q.empty()) q.pop(at)();
  EXPECT_EQ(fired, (std::vector<int>{3, 7, 10}));
}

TEST(PooledEventQueue, SlabIsReusedNotGrown) {
  sim::EventQueue q;
  common::SimTime at = 0;
  // Steady state: one event in flight at a time -> one pooled node, ever.
  for (int i = 0; i < 10'000; ++i) {
    q.schedule(i, [] {});
    (void)q.pop(at);
  }
  EXPECT_EQ(q.pool_size(), 1u);
}

TEST(PooledEventQueue, CancelPreventsFiring) {
  sim::EventQueue q;
  bool fired = false;
  const auto id = q.schedule(1, [&fired] { fired = true; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  EXPECT_FALSE(fired);
}

TEST(PooledEventQueue, CancelledSlotReuseDoesNotConfuseCancel) {
  sim::EventQueue q;
  const auto id = q.schedule(1, [] {});
  ASSERT_TRUE(q.cancel(id));
  // The slot is recycled for a new event; the stale id must not cancel it.
  bool fired = false;
  q.schedule(2, [&fired] { fired = true; });
  EXPECT_FALSE(q.cancel(id));
  common::SimTime at = 0;
  q.pop(at)();
  EXPECT_TRUE(fired);
  EXPECT_EQ(at, 2);
}

TEST(PooledEventQueue, MassCancellationCompactsAndPreservesOrder) {
  sim::EventQueue q;
  std::vector<int> fired;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(100, [&fired, i] { fired.push_back(i); }));
  }
  // Cancel every odd event; survivors must still fire in FIFO order.
  for (int i = 1; i < 1000; i += 2) EXPECT_TRUE(q.cancel(ids[i]));
  EXPECT_EQ(q.size(), 500u);
  common::SimTime at = 0;
  while (!q.empty()) q.pop(at)();
  ASSERT_EQ(fired.size(), 500u);
  for (std::size_t i = 0; i + 1 < fired.size(); ++i) {
    EXPECT_LT(fired[i], fired[i + 1]);
  }
}

TEST(PooledEventQueue, MoveOnlyActionsAreSupported) {
  // The point of UniqueFunction: actions may capture move-only state.
  sim::EventQueue q;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  q.schedule(1, [p = std::move(payload), &seen] { seen = *p; });
  common::SimTime at = 0;
  q.pop(at)();
  EXPECT_EQ(seen, 42);
}

// --- transport zero-copy + Replier contract ---------------------------------

struct HotpathRmiFixture : ::testing::Test {
  sim::Simulation sim{99};
  net::Network net{sim, net::CostModel::zero()};
  common::NodeId a = net.add_node("a");
  common::NodeId b = net.add_node("b");
  rmi::Transport ta{net, a};
  rmi::Transport tb{net, b};
};

TEST_F(HotpathRmiFixture, SteadyStateCallIsZeroPayloadCopies) {
  const auto echo = common::intern_verb("hp.echo");
  tb.register_service(echo, [](common::NodeId, const serial::Buffer& body,
                               rmi::Replier replier) { replier.ok(body); });
  const serial::Buffer payload(std::vector<std::uint8_t>(2048, 0x3C));
  (void)ta.call_sync(b, echo, payload);  // warm connection

  serial::Buffer::reset_copy_counters();
  for (int i = 0; i < 100; ++i) {
    auto result = ta.call_sync(b, echo, payload);
    ASSERT_EQ(result.size(), payload.size());
  }
  // The whole spine — envelope, network, retransmission state, reply cache,
  // CallResult — moved refcounts, never bytes.
  EXPECT_EQ(serial::Buffer::deep_copy_count(), 0u);
}

TEST_F(HotpathRmiFixture, EchoedPayloadAliasesTheRequestBuffer) {
  // Loopback-free proof that the body travels by reference: the service's
  // view of the body is the same storage the caller serialized.
  const auto probe = common::intern_verb("hp.probe");
  const std::uint8_t* service_saw = nullptr;
  tb.register_service(probe, [&service_saw](common::NodeId,
                                            const serial::Buffer& body,
                                            rmi::Replier replier) {
    service_saw = body.data();
    replier.ok({});
  });
  const serial::Buffer payload(std::vector<std::uint8_t>(64, 1));
  (void)ta.call_sync(b, probe, payload);
  EXPECT_EQ(service_saw, payload.data());
}

TEST_F(HotpathRmiFixture, ReplierIsOneShot) {
  const auto verb = common::intern_verb("hp.double");
  std::optional<rmi::Replier> parked;
  tb.register_service(verb, [&parked](common::NodeId, const serial::Buffer&,
                                      rmi::Replier replier) {
    parked = std::move(replier);
  });
  std::optional<rmi::CallResult> result;
  ta.call(b, verb, {}, [&result](rmi::CallResult r) { result = std::move(r); });
  sim.run_until([&parked] { return parked.has_value(); });
  ASSERT_TRUE(parked->armed());
  parked->ok({});
  EXPECT_FALSE(parked->armed());
  EXPECT_THROW(parked->ok({}), common::MageError);  // double reply
  EXPECT_THROW(parked->error("again"), common::MageError);
  sim.run_until([&result] { return result.has_value(); });
  EXPECT_TRUE(result->ok);
}

TEST_F(HotpathRmiFixture, MovedFromReplierThrows) {
  rmi::Replier from;
  EXPECT_THROW(from.ok({}), common::MageError);  // default-constructed
  const auto verb = common::intern_verb("hp.moved");
  tb.register_service(verb, [](common::NodeId, const serial::Buffer&,
                               rmi::Replier replier) {
    rmi::Replier stolen = std::move(replier);
    EXPECT_FALSE(replier.armed());                  // NOLINT(bugprone-use-after-move)
    EXPECT_THROW(replier.ok({}), common::MageError);  // NOLINT
    stolen.ok({});
  });
  EXPECT_NO_THROW((void)ta.call_sync(b, verb, {}));
}

TEST_F(HotpathRmiFixture, RetryTimersDoNotAccumulate) {
  // Completed calls cancel their retry timers, so a storm leaves the event
  // queue empty instead of thousands of dead timers deep.
  const auto verb = common::intern_verb("hp.clean");
  tb.register_service(verb, [](common::NodeId, const serial::Buffer&,
                               rmi::Replier replier) { replier.ok({}); });
  for (int i = 0; i < 500; ++i) (void)ta.call_sync(b, verb, {});
  EXPECT_EQ(sim.stats().counter("rmi.calls"), 500);
  // Everything completed, so every retry timer was cancelled: draining the
  // queue must not advance the clock anywhere near the first retry timeout
  // (un-cancelled timers would drag now() to >= 150'000).
  sim.run_until_idle();
  EXPECT_LT(sim.now(), 150'000);
  EXPECT_EQ(sim.stats().counter("rmi.retransmissions"), 0);
}

}  // namespace
}  // namespace mage
