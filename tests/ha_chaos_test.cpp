// High-availability control plane under chaos (ISSUE 6).
//
// The properties under test:
//
//   (a) deterministic election — a director quorum running term-based
//       leader election with seed-randomized timeouts elects the same
//       leaders, in the same terms, at ANY worker count, including under
//       scheduled director crashes;
//   (b) epoch-fenced hints — a stale Moved hint (left behind by a
//       crashed-and-restarted ex-home) is rejected by epoch comparison
//       instead of looping the forwarding chain;
//   (c) client failover — DirectoryClient resolves/announces against the
//       quorum across leader crashes, counting failovers;
//   (d) the full storm — generators race a migration against a partition
//       while every director (including each elected leader) crashes and
//       restarts; once quorum heals, every in-flight invoke completes
//       exactly once, the migration resolves via epoch-fenced hints, and
//       the whole run replays bit-identically at 1, 2, and 8 workers.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "rts/client.hpp"
#include "rts/director.hpp"
#include "rts/directory.hpp"
#include "rts/election.hpp"
#include "rts/protocol.hpp"
#include "rts/server.hpp"
#include "support/chaos_harness.hpp"

namespace mage {
namespace {

namespace proto = rts::proto;
using testing::chaos_model;

const std::uint64_t kSeeds[] = {0x7A11, 0xC0FFEE, 0x5EEDED};

constexpr common::SimDuration kWorkCostUs = 100;

class Session : public rts::MageObject {
 public:
  std::string class_name() const override { return "Session"; }
  void serialize(serial::Writer& w) const override { w.write_i64(served_); }
  void deserialize(serial::Reader& r) override { served_ = r.read_i64(); }
  std::int64_t work() { return ++served_; }

 private:
  std::int64_t served_ = 0;
};

std::int64_t served_count(rts::MageServer& server) {
  serial::Writer w;
  server.registry().local("sess").serialize(w);
  serial::Buffer bytes = w.take();
  serial::Reader r(bytes);
  return r.read_i64();
}

// --- (a) deterministic election ---------------------------------------------

struct ElectionRun {
  std::vector<std::uint64_t> terms;  // per director
  std::vector<int> roles;            // per director (0 F, 1 C, 2 L)
  std::uint32_t leader = 0;
  std::int64_t elections_held = 0;
  std::int64_t leader_changes = 0;

  bool operator==(const ElectionRun&) const = default;
};

ElectionRun run_election(std::uint64_t seed, int threads) {
  const net::CostModel model = chaos_model();
  constexpr int kNodes = 3;
  sim::ShardedSim ssim(kNodes, seed, net::Network::min_link_latency(model));
  net::Network net(ssim, model);

  std::vector<common::NodeId> ids;
  for (int i = 0; i < kNodes; ++i) {
    ids.push_back(net.add_node("d" + std::to_string(i)));
  }
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  std::vector<std::unique_ptr<rts::Election>> elections;
  for (int i = 0; i < kNodes; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
    elections.push_back(
        std::make_unique<rts::Election>(*transports[i], ids));
  }
  for (auto& e : elections) e->start();

  // One director crashes mid-reign and rejoins with a churned-up term,
  // which forces (at least) one re-election on top of the initial one.
  net::FaultSchedule schedule;
  schedule.crash_for(8'000, ids[0], 6'000);
  net.set_fault_schedule(std::move(schedule));

  // Snapshot once the cluster has had ample time to re-stabilize after the
  // rejoin (elections resolve in a few timeout spans).
  bool horizon_reached = false;
  net.node_sim(ids[1]).schedule_at(60'000, [&] { horizon_reached = true; });
  const bool done = ssim.run_until([&] { return horizon_reached; }, threads,
                                   /*deadline=*/120'000);
  EXPECT_TRUE(done);

  ElectionRun run;
  for (int i = 0; i < kNodes; ++i) {
    run.terms.push_back(elections[i]->term());
    run.roles.push_back(static_cast<int>(elections[i]->role()));
    if (elections[i]->is_leader()) run.leader = ids[i].value();
  }
  run.elections_held = ssim.counter("rts.elections_held");
  run.leader_changes = ssim.counter("rts.leader_changes");
  return run;
}

TEST(HaElection, ElectsOneLeaderAndReplaysAtAnyWorkerCount) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ElectionRun one = run_election(seed, 1);
    const ElectionRun two = run_election(seed, 2);
    const ElectionRun three = run_election(seed, 3);

    // Exactly one leader, every member settled on it, >= 2 elections
    // (initial + the crash/rejoin churn).
    int leaders = 0;
    for (int role : one.roles) {
      if (role == 2) ++leaders;
    }
    EXPECT_EQ(leaders, 1);
    EXPECT_NE(one.leader, 0u);
    EXPECT_GE(one.elections_held, 2);
    EXPECT_GE(one.leader_changes, 1);

    // Bit-identical replay: same terms, same roles, same leader, same
    // number of elections — at any worker count.
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, three);
  }
}

// --- (b) stale hints are fenced, not chased ---------------------------------

TEST(HaEpochFence, StaleHintFromRestartedNodeIsRejectedNotLooped) {
  sim::Simulation sim(0x5EED);
  net::Network net(sim, chaos_model());

  rts::ClassWorld world;
  rts::ClassBuilder<Session>(world, "Session").method("work", &Session::work,
                                                      kWorkCostUs);
  rts::Directory directory;

  std::vector<common::NodeId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(net.add_node("n" + std::to_string(i)));
  }
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  std::vector<std::unique_ptr<rts::MageServer>> servers;
  for (int i = 0; i < 4; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
    servers.push_back(
        std::make_unique<rts::MageServer>(*transports[i], world, directory));
    servers[i]->class_cache().install("Session");
  }

  // The object's real, current placement: n1 at epoch 3.
  rts::ComponentInfo info;
  info.name = "sess";
  info.class_name = "Session";
  info.home = ids[0];
  info.is_public = true;
  directory.announce(info);
  servers[0]->registry().bind("sess", world.instantiate("Session"),
                              /*epoch=*/3);

  // Fossil forwarding knowledge from an earlier epoch: n3 -> n2 -> n3, a
  // cycle that predates the object's move back to n1.  n2 additionally
  // crashed and restarted since (losing any binding it ever had) — the
  // classic "dead ex-home resurrected by a stale chain" setup.
  EXPECT_TRUE(servers[2]->registry().update_forward("sess", ids[1], 1));
  EXPECT_TRUE(servers[1]->registry().update_forward("sess", ids[2], 1));
  net.set_node_down(ids[1], true);
  net.set_node_down(ids[1], false);

  // A client on n4 that has already confirmed epoch 3 starts its chase at
  // n3 (a maximally stale starting point).
  rts::MageClient client(*transports[3], *servers[3], directory, world,
                         common::ActivityId{1});
  client.note_epoch("sess", 3);
  common::NodeId cloc = ids[2];
  const auto result = client.invoke<std::int64_t>(cloc, "sess", "work");

  // n3's Moved hint (n2 @ epoch 1) was rejected by the fence; the client
  // fell back to a fresh find() via the static home and converged on n1 —
  // instead of ping-ponging n3 <-> n2 until the chase budget died.
  EXPECT_EQ(result, 1);
  EXPECT_EQ(cloc, ids[0]);
  EXPECT_GE(sim.stats().counter("rts.stale_hints_rejected"), 1);
  // Without the fence the loop is real: the fossil cycle is still there.
  EXPECT_EQ(servers[2]->registry().forward("sess"), ids[1]);
  EXPECT_EQ(servers[1]->registry().forward("sess"), ids[2]);
}

// And the server-side half: a lookup carrying a min_epoch fence is not
// answered from staler forwarding knowledge.
TEST(HaEpochFence, LookupRefusesForwardingKnowledgeBelowTheFence) {
  sim::Simulation sim(0x5EED);
  net::Network net(sim, chaos_model());

  rts::ClassWorld world;
  rts::ClassBuilder<Session>(world, "Session").method("work", &Session::work,
                                                      kWorkCostUs);
  rts::Directory directory;
  const auto n1 = net.add_node("n1");
  const auto n2 = net.add_node("n2");
  rmi::Transport t1(net, n1), t2(net, n2);
  rts::MageServer s1(t1, world, directory);
  rts::MageServer s2(t2, world, directory);
  (void)s2;

  EXPECT_TRUE(s1.registry().update_forward("sess", n2, /*epoch=*/1));

  proto::LookupRequest fenced;
  fenced.name = "sess";
  fenced.min_epoch = 5;
  auto reply = proto::LookupReply::decode(
      t2.call_sync(n1, proto::verbs::kLookup, fenced.encode()));
  EXPECT_EQ(reply.status, proto::Status::NotFound);

  // The same lookup without the fence happily walks the stale chain (and
  // dead-ends at n2, which has nothing — the legacy behavior).
  proto::LookupRequest unfenced;
  unfenced.name = "sess";
  auto legacy = proto::LookupReply::decode(
      t2.call_sync(n1, proto::verbs::kLookup, unfenced.encode()));
  EXPECT_EQ(legacy.status, proto::Status::NotFound);  // chain dead-ends
}

// --- (c) directory failover --------------------------------------------------

TEST(HaDirectory, ClientFailsOverAcrossALeaderCrash) {
  sim::Simulation sim(0xD1CE);
  net::Network net(sim, chaos_model());

  std::vector<common::NodeId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(net.add_node("n" + std::to_string(i)));
  }
  const std::vector<common::NodeId> members{ids[0], ids[1], ids[2]};
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  for (int i = 0; i < 4; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
  }
  std::vector<std::unique_ptr<rts::Director>> directors;
  for (int i = 0; i < 3; ++i) {
    directors.push_back(
        std::make_unique<rts::Director>(*transports[i], members));
  }
  for (auto& d : directors) d->start();

  auto leader_of = [&]() -> rts::Director* {
    for (auto& d : directors) {
      if (d->election().is_leader()) return d.get();
    }
    return nullptr;
  };
  sim.run_until([&] { return leader_of() != nullptr; }, 60'000);
  ASSERT_NE(leader_of(), nullptr);

  // Announce through the quorum; the leader replicates to followers.
  rts::DirectoryClient dclient(*transports[3], members);
  ASSERT_TRUE(dclient.announce_sync(
      proto::PlacementRecord{"obj", "Session", ids[3], true, 1}));
  sim.run_for(5'000);  // let replication land
  for (auto& d : directors) {
    ASSERT_TRUE(d->records().contains("obj"));
    EXPECT_EQ(d->records().at("obj").host, ids[3]);
  }

  // Crash the leader.  Resolve must fail over to a surviving member, and
  // the survivors must elect a replacement.
  rts::Director* old_leader = leader_of();
  const std::uint64_t old_term = old_leader->election().term();
  net.set_node_down(old_leader->self(), true);
  dclient.set_preferred(old_leader->self());  // force the sweep to start dead

  const auto resolved = dclient.resolve_sync("obj");
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->host, ids[3]);
  EXPECT_EQ(resolved->epoch, 1u);
  EXPECT_GE(sim.stats().counter("rmi.directory_failovers"), 1);

  sim.run_until(
      [&] {
        rts::Director* l = leader_of();
        return l != nullptr && l != old_leader &&
               l->election().term() > old_term;
      },
      sim.now() + 120'000);
  rts::Director* new_leader = leader_of();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader, old_leader);

  // A fenced write keeps working against the new leader.
  EXPECT_TRUE(dclient.announce_sync(
      proto::PlacementRecord{"obj", "Session", ids[1], true, 2}));
  const auto moved = dclient.resolve_sync("obj");
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(moved->host, ids[1]);
  EXPECT_EQ(moved->epoch, 2u);
  // And the failover latency counter accumulated simulated time.
  EXPECT_GT(sim.stats().counter("rmi.directory_failover_time_us"), 0);
}

// --- (d) the full storm -------------------------------------------------------

struct HaStormRun {
  bool completed = false;
  // Per generator node: FNV fold of every completion (status, value,
  // shard-local time) in completion order.
  std::vector<std::uint64_t> digests;
  std::int64_t ok_completions = 0;
  std::int64_t failed_calls = 0;
  std::int64_t served = 0;  // the object's own execution count
  std::int64_t migrations = 0;
  int copies = 0;
  bool on_destination = false;
  bool move_ok = false;
  bool announced = false;
  common::NodeId last_resolved_host = common::kNoNode;
  std::uint64_t last_resolved_epoch = 0;
  std::int64_t resolves_issued = 0;
  std::int64_t elections_held = 0;
  std::int64_t leader_changes = 0;
  std::int64_t directory_failovers = 0;
  std::int64_t dir_resolves = 0;
  std::int64_t fifo_violations = 0;
  std::int64_t link_loss_drops = 0;
  std::int64_t pending_fault_events = 0;

  bool replay_equal(const HaStormRun& other) const {
    return digests == other.digests &&
           ok_completions == other.ok_completions && served == other.served &&
           migrations == other.migrations &&
           last_resolved_host == other.last_resolved_host &&
           last_resolved_epoch == other.last_resolved_epoch &&
           elections_held == other.elections_held &&
           leader_changes == other.leader_changes &&
           directory_failovers == other.directory_failovers &&
           link_loss_drops == other.link_loss_drops;
  }
};

// 8 nodes: directors on 0-2, the object's home on 3, migration target 4,
// generators on 5-7.  A move 3 -> 4 is issued inside a 19ms partition of
// exactly that link, while the directors take rolling crashes (at most one
// down at a time — quorum always exists; every director, hence every
// leader, crashes at some point) and one generator link runs 30% loss.
HaStormRun run_ha_storm(std::uint64_t seed, int threads) {
  const net::CostModel model = chaos_model();
  constexpr int kNodes = 8;
  constexpr std::int64_t kInvokesPerGen = 25;
  sim::ShardedSim ssim(kNodes, seed, net::Network::min_link_latency(model));
  net::Network net(ssim, model);

  rts::ClassWorld world;
  rts::ClassBuilder<Session>(world, "Session").method("work", &Session::work,
                                                      kWorkCostUs);
  rts::Directory directory;

  std::vector<common::NodeId> ids;
  for (int i = 0; i < kNodes; ++i) {
    ids.push_back(net.add_node("n" + std::to_string(i)));
  }
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  std::vector<std::unique_ptr<rts::MageServer>> servers;
  for (int i = 0; i < kNodes; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
    servers.push_back(
        std::make_unique<rts::MageServer>(*transports[i], world, directory));
    servers[i]->class_cache().install("Session");
  }

  const std::vector<common::NodeId> members{ids[0], ids[1], ids[2]};
  std::vector<std::unique_ptr<rts::Director>> directors;
  for (int i = 0; i < 3; ++i) {
    directors.push_back(
        std::make_unique<rts::Director>(*transports[i], members));
  }

  // Deployment bootstrap: the object starts on n3 at epoch 1, known to the
  // static directory AND pre-seeded into every director replica.
  rts::ComponentInfo info;
  info.name = "sess";
  info.class_name = "Session";
  info.home = ids[3];
  info.is_public = true;
  directory.announce(info);
  servers[3]->registry().bind("sess", world.instantiate("Session"));
  for (auto& d : directors) {
    d->seed(proto::PlacementRecord{"sess", "Session", ids[3], true, 1});
  }
  for (auto& d : directors) d->start();

  // The chaos program.  Rolling director crashes: 0 down in [2,7)ms,
  // 1 down in [9,14)ms, 2 down in [16,21)ms — never two at once, so a
  // two-member quorum always exists.  The partition cuts exactly the
  // migration link for 19ms.  The loss burst pounds one generator's path.
  net::FaultSchedule schedule;
  schedule.crash_for(2'000, ids[0], 5'000);
  schedule.crash_for(9'000, ids[1], 5'000);
  schedule.crash_for(16'000, ids[2], 5'000);
  schedule.partition_for(1'000, ids[3], ids[4], 19'000);
  // Satellite 1 exercised on a guaranteed-busy directed link: the mover
  // (n6) retransmits its pending kMove to n3 every 3ms for the whole
  // partition, so this 90% burst provably draws — and drops — per-link
  // loss decisions without touching any other path.
  schedule.link_loss_burst(22'000, ids[6], ids[3], 0.90, 12'000);
  net.set_fifo_checks(true);
  net.set_fault_schedule(std::move(schedule));

  // Generous retry budgets: the partition lasts 19 simulated ms.
  rmi::CallOptions storm_options;
  storm_options.retry_timeout_us = 3'000;
  storm_options.max_attempts = 64;

  // Generators on n5-n7: sequential invokes chasing the object with
  // client-side epoch fencing, falling back to an async directory resolve
  // when the chase dead-ends.
  struct Gen {
    rmi::Transport* transport = nullptr;
    std::unique_ptr<rts::DirectoryClient> dclient;
    sim::Simulation* sim = nullptr;
    common::NodeId believed;
    std::uint64_t known_epoch = 1;
    std::int64_t completed = 0;
    std::int64_t failed = 0;
    std::uint64_t digest = 0xcbf29ce484222325ull;
    std::function<void()> invoke;
    std::function<void()> refind;
  };
  std::vector<std::unique_ptr<Gen>> gens;
  for (int g = 5; g < 8; ++g) {
    auto gen = std::make_unique<Gen>();
    gen->transport = transports[g].get();
    gen->dclient =
        std::make_unique<rts::DirectoryClient>(*transports[g], members);
    gen->sim = &net.node_sim(ids[g]);
    gen->believed = ids[3];
    Gen* gp = gen.get();
    gp->invoke = [gp, &ids, storm_options] {
      if (gp->completed >= kInvokesPerGen) return;
      proto::InvokeRequest request;
      request.name = "sess";
      request.method = "work";
      gp->transport->call(
          gp->believed, proto::verbs::kInvoke, request.encode(),
          [gp, &ids](rmi::CallResult result) {
            using testing::chaos_detail::fold;
            if (!result.ok) {
              // Object hosts never crash in this schedule; a transport
              // failure would be a liveness bug.  Count and stop.
              ++gp->failed;
              return;
            }
            const auto reply = proto::InvokeReply::decode(result.body);
            gp->digest =
                fold(fold(fold(gp->digest,
                               static_cast<std::uint64_t>(reply.status)),
                          static_cast<std::uint64_t>(
                              reply.status == proto::Status::Ok
                                  ? serial::Reader(reply.result).read_i64()
                                  : 0)),
                     static_cast<std::uint64_t>(gp->sim->now()));
            if (reply.status == proto::Status::Ok) {
              ++gp->completed;
              gp->invoke();
              return;
            }
            if (reply.status == proto::Status::Moved &&
                reply.hint != common::kNoNode &&
                (reply.hint_epoch == 0 ||
                 reply.hint_epoch >= gp->known_epoch)) {
              if (reply.hint_epoch > gp->known_epoch) {
                gp->known_epoch = reply.hint_epoch;
              }
              gp->believed = reply.hint;
              gp->invoke();
              return;
            }
            // Stale hint or NotFound: ask the director quorum, backing
            // off so the in-transit window does not spin the wires.
            gp->refind();
          },
          storm_options);
    };
    gp->refind = [gp, &ids] {
      gp->sim->schedule_after(
          2'000,
          [gp, &ids] {
            gp->dclient->resolve(
                "sess", [gp, &ids](
                            std::optional<rts::DirectoryClient::Resolution> r) {
                  if (r.has_value() && r->epoch >= gp->known_epoch) {
                    gp->known_epoch = r->epoch;
                    gp->believed = r->host;
                  } else if (!r.has_value()) {
                    gp->believed = ids[3];  // static home as last resort
                  }
                  gp->invoke();
                });
          },
          sim::Wake::No);
    };
    gens.push_back(std::move(gen));
  }

  // The racing move, issued from n6's shard 1.5ms in — inside the
  // partition window.  On Ok the mover announces the new placement (with
  // the epoch the move minted) to the director quorum.
  bool move_done = false, move_ok = false, announced = false;
  auto mover_dclient =
      std::make_unique<rts::DirectoryClient>(*transports[6], members);
  net.node_sim(ids[6]).schedule_at(1'500, [&] {
    proto::MoveRequest request;
    request.name = "sess";
    request.to = ids[4];
    transports[6]->call(
        ids[3], proto::verbs::kMove, request.encode(),
        [&](rmi::CallResult r) {
          move_done = true;
          if (!r.ok) return;
          const auto reply = proto::SimpleReply::decode(r.body);
          move_ok = reply.status == proto::Status::Ok;
          if (!move_ok) return;
          mover_dclient->announce(
              proto::PlacementRecord{"sess", "Session", ids[4], true,
                                     reply.hint_epoch},
              [&](bool ok) { announced = ok; });
        },
        storm_options);
  });

  // A control-plane prober on n7: resolves "sess" every 2ms, from before
  // the first director crash until it has observed the announced epoch-2
  // placement.  With rolling director crashes its preferred member is
  // periodically dead, so the failover path is exercised deterministically
  // (the very first crash window catches its preferred member).
  struct Prober {
    std::unique_ptr<rts::DirectoryClient> dclient;
    common::NodeId last_host = common::kNoNode;
    std::uint64_t last_epoch = 0;
    std::int64_t issued = 0;
    bool done = false;
    std::function<void()> probe;
  } prober;
  prober.dclient = std::make_unique<rts::DirectoryClient>(*transports[7],
                                                          members);
  auto& probe_sim = net.node_sim(ids[7]);
  prober.probe = [&prober, &probe_sim, &announced] {
    ++prober.issued;
    prober.dclient->resolve(
        "sess",
        [&prober, &probe_sim,
         &announced](std::optional<rts::DirectoryClient::Resolution> r) {
          // Reader-side fence: a follower that rejoined after missing a
          // replication may still answer with the older epoch; placement
          // knowledge only moves forward.
          if (r.has_value() && r->epoch >= prober.last_epoch) {
            prober.last_host = r->host;
            prober.last_epoch = r->epoch;
          }
          if (announced && prober.last_epoch >= 2) {
            prober.done = true;
            return;
          }
          probe_sim.schedule_after(2'000, prober.probe, sim::Wake::No);
        });
  };
  probe_sim.schedule_at(500, [&prober] { prober.probe(); }, sim::Wake::No);

  for (auto& gen : gens) gen->invoke();

  auto done = [&] {
    std::int64_t total = 0;
    for (auto& gen : gens) total += gen->completed + gen->failed;
    return total == 3 * kInvokesPerGen && move_done && announced &&
           prober.done && net.pending_fault_events() == 0;
  };
  HaStormRun run;
  run.completed = ssim.run_until(done, threads, /*deadline=*/60'000'000);

  for (auto& gen : gens) {
    run.digests.push_back(gen->digest);
    run.ok_completions += gen->completed;
    run.failed_calls += gen->failed;
  }
  // The data-plane completion stream alone can be seed-insensitive (the
  // migration pins its timeline to the fault schedule), so fold the
  // control plane's seed-driven trajectory — election terms and counts —
  // into every digest.  Replays at different worker counts still match
  // because elections are deterministic per seed.
  for (auto& digest : run.digests) {
    using testing::chaos_detail::fold;
    digest = fold(digest, static_cast<std::uint64_t>(
                              ssim.counter("rts.elections_held")));
    for (auto& d : directors) digest = fold(digest, d->election().term());
  }
  run.migrations = ssim.counter("rts.migrations");
  for (int i = 0; i < kNodes; ++i) {
    if (servers[i]->registry().has_local("sess")) ++run.copies;
  }
  run.on_destination = servers[4]->registry().has_local("sess");
  if (run.on_destination) run.served = served_count(*servers[4]);
  run.move_ok = move_ok;
  run.announced = announced;
  run.last_resolved_host = prober.last_host;
  run.last_resolved_epoch = prober.last_epoch;
  run.resolves_issued = prober.issued;
  run.elections_held = ssim.counter("rts.elections_held");
  run.leader_changes = ssim.counter("rts.leader_changes");
  run.directory_failovers = ssim.counter("rmi.directory_failovers");
  run.dir_resolves = ssim.counter("rts.dir_resolves");
  run.fifo_violations = ssim.counter("net.fifo_violations");
  run.link_loss_drops = ssim.counter("net.messages_dropped_by_link_loss");
  run.pending_fault_events =
      static_cast<std::int64_t>(net.pending_fault_events());
  return run;
}

void expect_ha_invariants(const HaStormRun& run, std::uint64_t seed,
                          int threads) {
  SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
               std::to_string(threads));
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.failed_calls, 0);
  EXPECT_EQ(run.ok_completions, 75);
  // Exactly-once: the object's own execution count equals the number of
  // acknowledged invokes — nothing lost, nothing double-executed, across
  // the migration AND the reply-path retransmissions.
  EXPECT_EQ(run.served, run.ok_completions);
  // The migration resolved: one live copy, on the destination, exactly one
  // transfer, and the quorum ended up knowing the fenced placement.
  EXPECT_EQ(run.copies, 1);
  EXPECT_TRUE(run.on_destination);
  EXPECT_TRUE(run.move_ok);
  EXPECT_EQ(run.migrations, 1);
  EXPECT_TRUE(run.announced);
  EXPECT_EQ(run.last_resolved_host.value(), 5u);  // ids[4] is node 5
  EXPECT_EQ(run.last_resolved_epoch, 2u);
  // The control plane was genuinely chaotic and genuinely highly
  // available: every director (so every leader) crashed, forcing
  // re-elections and client failovers, yet every probe that completed
  // before the horizon got an answer.
  EXPECT_GE(run.elections_held, 2);
  EXPECT_GE(run.leader_changes, 2);
  EXPECT_GE(run.directory_failovers, 1);
  EXPECT_GE(run.dir_resolves, 1);
  EXPECT_GT(run.resolves_issued, 5);
  // Satellite proofs riding along: per-link loss actually dropped traffic,
  // and the wire-FIFO self-check survived the crash/restart epochs.
  EXPECT_GT(run.link_loss_drops, 0);
  EXPECT_EQ(run.fifo_violations, 0);
  EXPECT_EQ(run.pending_fault_events, 0);
}

TEST(HaChaosStorm, FailoverStormReplaysBitIdenticallyAt1_2_8Workers) {
  for (const std::uint64_t seed : kSeeds) {
    const HaStormRun one = run_ha_storm(seed, 1);
    const HaStormRun two = run_ha_storm(seed, 2);
    const HaStormRun eight = run_ha_storm(seed, 8);
    expect_ha_invariants(one, seed, 1);
    expect_ha_invariants(two, seed, 2);
    expect_ha_invariants(eight, seed, 8);
    EXPECT_TRUE(one.replay_equal(two)) << "seed " << seed;
    EXPECT_TRUE(one.replay_equal(eight)) << "seed " << seed;
  }
}

TEST(HaChaosStorm, DifferentSeedsProduceDifferentStorms) {
  const HaStormRun a = run_ha_storm(kSeeds[0], 2);
  const HaStormRun b = run_ha_storm(kSeeds[1], 2);
  EXPECT_NE(a.digests, b.digests);
}

}  // namespace
}  // namespace mage
