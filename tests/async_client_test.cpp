// AsyncClient facade + channel policy layer: deadline/hedge/retry timing,
// epoch-fenced chases, one-way zero-retry, and the sharded chaos variant
// (AsyncChaos.*: digest-identical at 1/2/8 workers across seeds).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_schedule.hpp"
#include "net/network.hpp"
#include "rmi/channel.hpp"
#include "rmi/transport.hpp"
#include "rts/async_client.hpp"
#include "rts/directory.hpp"
#include "rts/future.hpp"
#include "rts/server.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"
#include "support/chaos_harness.hpp"
#include "support/test_objects.hpp"

namespace mage::rts {
namespace {

using testing::Counter;

// A hand-built driver-engine federation (no MageSystem: these tests need
// to install fault schedules and custom CallPolicies per client).
struct Cluster {
  explicit Cluster(int nodes, std::uint64_t seed = 42)
      : sim(seed), net(sim, testing::chaos_model()) {
    ClassBuilder<Counter>(world, "Counter")
        .method("increment", &Counter::increment)
        .method("add", &Counter::add)
        .method("get", &Counter::get);
    for (int i = 0; i < nodes; ++i) {
      ids.push_back(net.add_node("n" + std::to_string(i + 1)));
    }
    for (int i = 0; i < nodes; ++i) {
      transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
      servers.push_back(
          std::make_unique<MageServer>(*transports[i], world, directory));
      servers[i]->class_cache().install("Counter");
    }
  }

  // Binds a fresh public Counter named `name` on node index `home`.
  void bind_counter(const std::string& name, int home) {
    ComponentInfo info;
    info.name = name;
    info.class_name = "Counter";
    info.home = ids[home];
    info.is_public = true;
    directory.announce(info);
    servers[home]->registry().bind(name, world.instantiate("Counter"));
  }

  [[nodiscard]] std::int64_t counter(const std::string& name) {
    return sim.stats().counter(name);
  }

  sim::Simulation sim;
  net::Network net;
  ClassWorld world;
  Directory directory;
  std::vector<common::NodeId> ids;
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  std::vector<std::unique_ptr<MageServer>> servers;
};

// --- deadline --------------------------------------------------------------

TEST(AsyncClientTest, DeadlineExpiresMidBackoff) {
  Cluster cluster(2);
  // The target is unreachable for the whole test: the first attempt fails
  // after 2 transmissions x 2ms, a retry is scheduled 50ms out, and the
  // 20ms overall deadline expires in the middle of that backoff.
  net::FaultSchedule schedule;
  schedule.partition(0, cluster.ids[0], cluster.ids[1]);
  cluster.net.set_fault_schedule(std::move(schedule));

  rmi::CallPolicy policy;
  policy.deadline_us = 20'000;
  policy.attempt_timeout_us = 2'000;
  policy.attempt_transmissions = 2;
  policy.max_retries = 5;
  policy.backoff_base_us = 50'000;
  policy.backoff_multiplier = 1.0;
  AsyncClient client(*cluster.servers[0], policy);

  std::string error;
  common::SimTime completed_at = -1;
  auto future = client.ping(cluster.ids[1]).on_error([&](const std::string& e) {
    error = e;
    completed_at = cluster.sim.now();
  });
  ASSERT_TRUE(cluster.sim.run_until([&] { return future.completed(); }));

  EXPECT_TRUE(future.has_error());
  EXPECT_NE(error.find("deadline exceeded"), std::string::npos) << error;
  // The deadline timer completes the call at EXACTLY start + deadline —
  // not at the next attempt boundary.
  EXPECT_EQ(completed_at, 20'000);
  EXPECT_EQ(cluster.counter("rmi.deadline_exceeded"), 1);
  EXPECT_EQ(cluster.counter("rmi.retries"), 1);  // scheduled, then killed

  // The pending backoff timer was cancelled with the call: draining the
  // queue must not launch the killed retry.
  cluster.sim.run_until_idle();
  EXPECT_EQ(cluster.counter("rmi.retries"), 1);
  EXPECT_EQ(cluster.counter("rmi.deadline_exceeded"), 1);
}

// --- hedging ---------------------------------------------------------------

TEST(AsyncClientTest, HedgeWinnerCancelsLoserRetryTimer) {
  Cluster cluster(2);
  // Drop the primary's one transmission (sent at t=0); the hedge launches
  // at t=2ms, after the burst, and wins.  The primary's retransmission
  // timer (20ms out) must be cancelled by the win — not fire late.
  net::FaultSchedule schedule;
  schedule.link_loss_burst(0, cluster.ids[0], cluster.ids[1], 1.0, 1'000);
  cluster.net.set_fault_schedule(std::move(schedule));

  rmi::CallPolicy policy;
  policy.attempt_timeout_us = 20'000;
  policy.attempt_transmissions = 4;
  policy.hedge_after_us = 2'000;
  AsyncClient client(*cluster.servers[0], policy);

  auto future = client.ping(cluster.ids[1]);
  ASSERT_TRUE(cluster.sim.run_until([&] { return future.completed(); }));

  EXPECT_TRUE(future.has_value()) << future.error();
  // Completed shortly after the hedge launch — not after the primary's
  // 20ms retransmission period.
  EXPECT_GT(cluster.sim.now(), 2'000);
  EXPECT_LT(cluster.sim.now(), 20'000);
  EXPECT_EQ(cluster.counter("rmi.hedged_calls"), 1);
  EXPECT_EQ(cluster.counter("rmi.hedge_wins"), 1);
  EXPECT_EQ(cluster.counter("rmi.cancelled_calls"), 1);

  // No late retransmissions: the loser's timer is dead, so draining the
  // queue sends nothing more.
  cluster.sim.run_until_idle();
  EXPECT_EQ(cluster.counter("rmi.retransmissions"), 0);
}

// --- epoch fence vs a stale Moved hint -------------------------------------

TEST(AsyncClientTest, ChaseRetriesPastStaleMovedHintUntilChainCatchesUp) {
  Cluster cluster(5);
  cluster.bind_counter("obj", /*home=*/0);

  // Build a two-hop forwarding chain: obj moves n1 -> n2 -> n3.  n1's
  // forwarding address is left one epoch behind (it still points at n2).
  AsyncClient mover_a(*cluster.servers[0]);
  auto moved_a = mover_a.move("obj", cluster.ids[1]);
  ASSERT_TRUE(cluster.sim.run_until([&] { return moved_a.completed(); }));
  ASSERT_TRUE(moved_a.has_value()) << moved_a.error();

  AsyncClient mover_b(*cluster.servers[1]);
  auto moved_b = mover_b.move("obj", cluster.ids[2]);
  ASSERT_TRUE(cluster.sim.run_until([&] { return moved_b.completed(); }));
  ASSERT_TRUE(moved_b.has_value()) << moved_b.error();
  const std::uint64_t fresh_epoch = mover_b.known_epoch("obj");
  ASSERT_GT(fresh_epoch, 0u);

  // The chaser (n4) has confirmed epoch knowledge of the second move but
  // no location knowledge, so it asks the static home n1 — whose Moved
  // hint carries the FIRST move's epoch.  The fence must reject it (never
  // chase placement history backwards), and the chase re-locates.
  AsyncClient chaser(*cluster.servers[3]);
  chaser.note_epoch("obj", fresh_epoch);
  auto invoked = chaser.invoke<std::int64_t>("obj", "increment");

  // n1's own min_epoch-fenced lookup dead-ends too (its forwarding
  // knowledge is one epoch behind the chaser's fence), but the chain
  // still leads to the live binding — so locate()'s last-resort unfenced
  // walk follows the stale link forward (epochs rise strictly along a
  // chain) and converges without any outside help.  A genuine
  // retry/hint/fence race, resolved deterministically.
  ASSERT_TRUE(cluster.sim.run_until([&] { return invoked.completed(); },
                                    5'000'000));
  ASSERT_TRUE(invoked.has_value()) << invoked.error();
  EXPECT_EQ(invoked.value(), 1);  // exactly one execution despite the chase
  EXPECT_GE(cluster.counter("rts.stale_hints_rejected"), 1);
  EXPECT_GE(cluster.counter("rts.async_relocates"), 1);
  EXPECT_GE(cluster.counter("rts.unfenced_walks"), 1);
  EXPECT_EQ(cluster.counter("rts.async_invokes"), 1);
}

// --- one-way verbs are never channel-retried -------------------------------

TEST(AsyncClientTest, OnewayIgnoresRetryAndHedgePolicy) {
  Cluster cluster(2);
  cluster.bind_counter("obj", /*home=*/1);
  // Drop everything for 1.5ms: a hedging stack would launch its hedge at
  // 0.5ms, a retrying stack would re-issue with a fresh request id.  The
  // one-way must do neither — only the transport's same-request-id
  // retransmission (at-most-once safe) may recover it.
  net::FaultSchedule schedule;
  schedule.loss_burst(0, 1.0, 1'500);
  cluster.net.set_fault_schedule(std::move(schedule));

  rmi::CallPolicy aggressive;
  aggressive.attempt_timeout_us = 2'000;
  aggressive.attempt_transmissions = 8;
  aggressive.max_retries = 5;
  aggressive.backoff_base_us = 1'000;
  aggressive.hedge_after_us = 500;
  AsyncClient client(*cluster.servers[0], aggressive);

  auto ack = client.invoke_oneway("obj", "add", std::int64_t{3});
  ASSERT_TRUE(cluster.sim.run_until([&] { return ack.completed(); }));
  ASSERT_TRUE(ack.has_value()) << ack.error();

  EXPECT_EQ(cluster.counter("rmi.hedged_calls"), 0);
  EXPECT_EQ(cluster.counter("rmi.retries"), 0);
  EXPECT_GE(cluster.counter("rmi.retransmissions"), 1);

  // Exactly one execution: the parked result is 3, not a multiple of it.
  auto value = client.invoke<std::int64_t>("obj", "get");
  ASSERT_TRUE(cluster.sim.run_until([&] { return value.completed(); }));
  ASSERT_TRUE(value.has_value()) << value.error();
  EXPECT_EQ(value.value(), 3);
}

// --- future combinators (driver-side) --------------------------------------

TEST(AsyncClientTest, WhenAllAndWhenAnyOverProbes) {
  Cluster cluster(3);
  AsyncClient client(*cluster.servers[0]);

  std::vector<MageFuture<double>> probes;
  for (int i = 0; i < 3; ++i) probes.push_back(client.load_of(cluster.ids[i]));
  auto all = when_all(probes);
  auto any = when_any(probes);
  ASSERT_TRUE(cluster.sim.run_until(
      [&] { return all.completed() && any.completed(); }));
  ASSERT_TRUE(all.has_value()) << all.error();
  EXPECT_EQ(all.value().size(), 3u);
  ASSERT_TRUE(any.has_value()) << any.error();
  EXPECT_LT(any.value().first, 3u);
}

// --- sharded chaos variant -------------------------------------------------

constexpr int kChaosNodes = 6;
constexpr int kChaosSessions = 12;
constexpr int kInvokesPerGen = 40;
constexpr int kChaosWindow = 3;

std::string chaos_session(int s) { return "c" + std::to_string(s); }

struct AsyncChaosRun {
  bool completed = false;
  std::int64_t failures = 0;
  // Per generator node: FNV fold of (session, returned value, shard-local
  // completion time) in completion order — single writer per slot.
  std::vector<std::uint64_t> digests;
  // Aggregated per session: invokes issued / sum of returned values.
  std::vector<std::int64_t> issued;
  std::vector<std::int64_t> retsum;
  std::int64_t relocates = 0;
  std::int64_t redirects = 0;
};

// The storm_balancer workload shrunk and run under a seed-generated fault
// schedule (loss bursts, partitions, a crash/restart), with a mover
// migrating sessions while every node's generator chases them.
AsyncChaosRun run_async_chaos(std::uint64_t seed, int threads) {
  const net::CostModel model = testing::chaos_model();
  sim::ShardedSim ssim(kChaosNodes, seed,
                       net::Network::min_link_latency(model));
  net::Network net(ssim, model);

  ClassWorld world;
  ClassBuilder<Counter>(world, "Counter")
      .method("add", &Counter::add)
      .method("get", &Counter::get);
  Directory directory;

  std::vector<common::NodeId> ids;
  for (int i = 0; i < kChaosNodes; ++i) {
    ids.push_back(net.add_node("n" + std::to_string(i)));
  }
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  std::vector<std::unique_ptr<MageServer>> servers;
  std::vector<std::unique_ptr<AsyncClient>> clients;
  rmi::CallPolicy invoke_policy;  // transport-level recovery only
  invoke_policy.attempt_timeout_us = 3'000;
  invoke_policy.attempt_transmissions = 64;
  for (int i = 0; i < kChaosNodes; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
    servers.push_back(
        std::make_unique<MageServer>(*transports[i], world, directory));
    servers[i]->class_cache().install("Counter");
    clients.push_back(
        std::make_unique<AsyncClient>(*servers[i], invoke_policy));
  }
  AsyncClient mover(*servers[0]);

  for (int s = 0; s < kChaosSessions; ++s) {
    ComponentInfo info;
    info.name = chaos_session(s);
    info.class_name = "Counter";
    info.home = ids[s % kChaosNodes];
    info.is_public = true;
    directory.announce(info);
    servers[s % kChaosNodes]->registry().bind(info.name,
                                              world.instantiate("Counter"));
  }

  testing::ChaosParams params;
  params.nodes = kChaosNodes;
  net.set_fifo_checks(true);
  net.set_fault_schedule(testing::random_fault_schedule(seed, params));
  // Horizon ticks keep virtual time moving past the last schedule entry.
  const common::SimTime horizon = params.fault_t0_us + params.fault_span_us * 2;
  for (common::SimTime t = 500; t <= horizon; t += 500) {
    net.node_sim(ids[0]).schedule_at(t, [] {}, sim::Wake::No);
  }

  struct Gen {
    std::int64_t issued = 0;
    std::int64_t completed = 0;
    std::int64_t failed = 0;
    std::uint64_t digest = 0xcbf29ce484222325ull;
    std::vector<std::int64_t> issued_to;
    std::vector<std::int64_t> retsum;
  };
  std::vector<Gen> gens(kChaosNodes);
  for (auto& g : gens) {
    g.issued_to.assign(kChaosSessions, 0);
    g.retsum.assign(kChaosSessions, 0);
  }

  using testing::chaos_detail::fold;
  std::function<void(int)> issue = [&](int g) {
    Gen& gen = gens[g];
    if (gen.issued >= kInvokesPerGen) return;
    ++gen.issued;
    const int s = static_cast<int>(
        net.node_sim(ids[g]).rng().next_below(kChaosSessions));
    ++gen.issued_to[s];
    auto& sim = net.node_sim(ids[g]);
    clients[g]
        ->invoke<std::int64_t>(chaos_session(s), "add", std::int64_t{1})
        .then([&, g, s](std::int64_t& v) {
          Gen& gn = gens[g];
          gn.retsum[s] += v;
          gn.digest =
              fold(fold(fold(gn.digest, static_cast<std::uint64_t>(s) + 1),
                        static_cast<std::uint64_t>(v)),
                   static_cast<std::uint64_t>(sim.now()));
          ++gn.completed;
          issue(g);
        })
        .on_error([&, g](const std::string&) {
          ++gens[g].failed;
          issue(g);
        });
  };

  // The mover migrates sessions while the storm is invoking them: Moved
  // hints, epoch fences, and relocations all race the chases.  Migrations
  // start after the fault window: a transfer frame lost to the schedule is
  // retransmitted on the transport's default 150ms period, which would pin
  // the session "in transit" past every chaser's 12 x 10ms budget.
  for (int k = 0; k < 10; ++k) {
    net.node_sim(ids[0]).schedule_at(
        horizon + 2'000 + 2'000 * k,
        [&mover, k, &ids] {
          mover.move(chaos_session(k % kChaosSessions),
                     ids[static_cast<std::size_t>(k * 5 + 1) % kChaosNodes])
              .on_error([](const std::string&) {});
        },
        sim::Wake::No);
  }

  for (int g = 0; g < kChaosNodes; ++g) {
    for (int w = 0; w < kChaosWindow; ++w) issue(g);
  }

  const std::int64_t total =
      static_cast<std::int64_t>(kChaosNodes) * kInvokesPerGen;
  AsyncChaosRun run;
  run.completed = ssim.run_until(
      [&] {
        std::int64_t done = 0;
        for (const auto& g : gens) done += g.completed + g.failed;
        return done == total && net.pending_fault_events() == 0;
      },
      threads, /*deadline=*/60'000'000);

  run.issued.assign(kChaosSessions, 0);
  run.retsum.assign(kChaosSessions, 0);
  for (const auto& g : gens) {
    run.failures += g.failed;
    run.digests.push_back(g.digest);
    for (int s = 0; s < kChaosSessions; ++s) {
      run.issued[s] += g.issued_to[s];
      run.retsum[s] += g.retsum[s];
    }
  }
  run.relocates = ssim.counter("rts.async_relocates");
  run.redirects = ssim.counter("rts.async_redirects");
  return run;
}

// --- combinator edge cases -------------------------------------------------

TEST(FutureEdgeTest, WhenAllOnEmptyVectorCompletesImmediately) {
  // No simulation needed: zero futures means zero pending dependencies, so
  // the combined future must resolve synchronously with an empty vector —
  // the fan-out base case DistMap-style collections rely on.
  std::vector<MageFuture<std::int64_t>> none;
  bool resolved = false;
  std::size_t count = 999;
  when_all(none)
      .then([&](std::vector<std::int64_t>& values) {
        resolved = true;
        count = values.size();
      })
      .on_error([&](const std::string& error) {
        ADD_FAILURE() << "empty when_all failed: " << error;
      });
  EXPECT_TRUE(resolved);
  EXPECT_EQ(count, 0u);
}

TEST(FutureEdgeTest, WhenAnyOnEmptyVectorFailsCleanly) {
  // A race with no contestants can never produce a winner: it must fail
  // immediately (not hang) with a diagnosable error.
  std::vector<MageFuture<std::int64_t>> none;
  bool failed = false;
  std::string message;
  when_any(none)
      .then([&](std::pair<std::size_t, std::int64_t>&) {
        ADD_FAILURE() << "empty when_any produced a winner";
      })
      .on_error([&](const std::string& error) {
        failed = true;
        message = error;
      });
  EXPECT_TRUE(failed);
  EXPECT_EQ(message, "when_any on zero futures");
}

TEST(AsyncChaos, DigestIdenticalAcrossWorkerCountsAndSeeds) {
  for (std::uint64_t seed : {0xA51ull, 0xA52ull, 0xA53ull}) {
    const AsyncChaosRun base = run_async_chaos(seed, 1);
    ASSERT_TRUE(base.completed) << "seed " << seed;
    EXPECT_EQ(base.failures, 0) << "seed " << seed;
    // Exactly-once through every chase: the i-th add on a session returns
    // i, so the returned values of a session's K invokes must sum to
    // K(K+1)/2 — a duplicate or lost execution breaks the triangle sum.
    for (int s = 0; s < kChaosSessions; ++s) {
      const std::int64_t k = base.issued[s];
      EXPECT_EQ(base.retsum[s], k * (k + 1) / 2)
          << "seed " << seed << " session " << s;
    }
    for (int threads : {2, 8}) {
      const AsyncChaosRun replay = run_async_chaos(seed, threads);
      ASSERT_TRUE(replay.completed) << "seed " << seed << " x" << threads;
      EXPECT_EQ(replay.digests, base.digests)
          << "seed " << seed << " diverged at " << threads << " workers";
      EXPECT_EQ(replay.retsum, base.retsum);
      EXPECT_EQ(replay.issued, base.issued);
      EXPECT_EQ(replay.failures, base.failures);
      EXPECT_EQ(replay.relocates, base.relocates);
      EXPECT_EQ(replay.redirects, base.redirects);
    }
  }
}

}  // namespace
}  // namespace mage::rts
