// Distributed collections: layout hashing, DistMap/DistArray operations
// through the facade, the mage.manifest verb, mid-stream partition
// migration with client-table self-repair, and the central Rebalancer
// policy.  (The lifeline policy and chaos determinism live in
// dist_chaos_test.cpp on the sharded engine.)
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "rmi/channel.hpp"
#include "rmi/transport.hpp"
#include "rts/async_client.hpp"
#include "rts/directory.hpp"
#include "rts/dist/dist_array.hpp"
#include "rts/dist/dist_map.hpp"
#include "rts/dist/layout.hpp"
#include "rts/dist/rebalancer.hpp"
#include "rts/future.hpp"
#include "rts/server.hpp"
#include "sim/simulation.hpp"
#include "support/chaos_harness.hpp"

namespace mage::rts {
namespace {

using dist::DistArray;
using dist::DistMap;
using IntMap = DistMap<std::uint64_t, std::int64_t>;
using StrMap = DistMap<std::string, std::int64_t>;
using IntArray = DistArray<std::int64_t>;

// --- layout ----------------------------------------------------------------

TEST(DistLayoutTest, KeyHashIsDeterministicAndSpreads) {
  const std::uint64_t h1 = dist::key_hash(std::uint64_t{42});
  EXPECT_EQ(h1, dist::key_hash(std::uint64_t{42}));
  EXPECT_NE(h1, dist::key_hash(std::uint64_t{43}));
  EXPECT_NE(dist::key_hash(std::string("a")), dist::key_hash(std::string("b")));

  // All partitions of a small table get hit by a modest key range.
  std::set<std::size_t> hit;
  for (std::uint64_t k = 0; k < 256; ++k) hit.insert(dist::partition_of(k, 4));
  EXPECT_EQ(hit.size(), 4u);
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_LT(dist::partition_of(k, 3), 3u);
  }
}

TEST(DistLayoutTest, PartitionNames) {
  EXPECT_EQ(dist::partition_name("m", 0), "m.p0");
  EXPECT_EQ(dist::partition_name("m", 11), "m.p11");
  EXPECT_EQ(dist::partition_prefix("m"), "m.p");
  EXPECT_EQ(dist::partition_name("m", 3).rfind(dist::partition_prefix("m"), 0),
            0u);
}

// --- driver-engine federation ----------------------------------------------

struct Cluster {
  explicit Cluster(int nodes, std::uint64_t seed = 42)
      : sim(seed), net(sim, testing::chaos_model()) {
    IntMap::register_class(world, "IntMapPart");
    StrMap::register_class(world, "StrMapPart");
    IntArray::register_class(world, "IntArrayPart");
    for (int i = 0; i < nodes; ++i) {
      ids.push_back(net.add_node("n" + std::to_string(i + 1)));
    }
    for (int i = 0; i < nodes; ++i) {
      transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
      servers.push_back(
          std::make_unique<MageServer>(*transports[i], world, directory));
      servers[i]->class_cache().install("IntMapPart");
      servers[i]->class_cache().install("StrMapPart");
      servers[i]->class_cache().install("IntArrayPart");
    }
  }

  // Waits for one future, returning value or error.
  template <typename T>
  T settle(MageFuture<T> future) {
    std::optional<T> value;
    std::optional<std::string> error;
    future.then([&](T& v) { value = v; }).on_error([&](const std::string& e) {
      error = e;
    });
    sim.run_until([&] { return value.has_value() || error.has_value(); });
    if (error) ADD_FAILURE() << "future failed: " << *error;
    return value.value_or(T{});
  }

  template <typename T>
  std::string settle_error(MageFuture<T> future) {
    bool done = false;
    std::string error;
    future.then([&](T&) { done = true; }).on_error([&](const std::string& e) {
      error = e;
      done = true;
    });
    sim.run_until([&] { return done; });
    return error;
  }

  sim::Simulation sim;
  net::Network net;
  ClassWorld world;
  Directory directory;
  std::vector<common::NodeId> ids;
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  std::vector<std::unique_ptr<MageServer>> servers;
};

// --- DistMap ---------------------------------------------------------------

TEST(DistMapTest, KeyedOpsRouteByHash) {
  Cluster cluster(3);
  AsyncClient client(*cluster.servers[0]);
  IntMap map(client, "m", 4);
  for (std::size_t p = 0; p < 4; ++p) {
    IntMap::bind_partition(*cluster.servers[p % 3], cluster.directory,
                           "IntMapPart", "m", p);
  }

  for (std::uint64_t k = 0; k < 32; ++k) {
    EXPECT_TRUE(cluster.settle(map.put(k, static_cast<std::int64_t>(k * 10))));
  }
  EXPECT_EQ(cluster.settle(map.size()), 32u);
  EXPECT_EQ(cluster.settle(map.get(7)), std::optional<std::int64_t>(70));
  EXPECT_EQ(cluster.settle(map.get(99)), std::nullopt);

  // apply is a read-modify-write; exec counters track executions per key.
  EXPECT_EQ(cluster.settle(map.apply(7, 5)), 75);
  EXPECT_EQ(cluster.settle(map.apply(7, 5)), 80);
  EXPECT_EQ(cluster.settle(map.exec_count(7)), 2);

  // expand is first-write-wins: the duplicate changes nothing but the
  // dup_hits counter.
  EXPECT_EQ(cluster.settle(map.expand(1000, 1)), 1);
  EXPECT_EQ(cluster.settle(map.expand(1000, 2)), 1);
  EXPECT_EQ(cluster.settle(map.exec_count(1000)), 1);
  EXPECT_EQ(cluster.settle(map.dup_hits()), 1);

  EXPECT_TRUE(cluster.settle(map.erase(7)));
  EXPECT_FALSE(cluster.settle(map.erase(7)));
  EXPECT_EQ(cluster.settle(map.get(7)), std::nullopt);
  EXPECT_EQ(cluster.settle(map.size()), 32u);  // -7, +1000

  // reduce_plus sums across partitions: sum(k*10, k in 0..31) - 70 + 1.
  std::int64_t expected = 0;
  for (std::int64_t k = 0; k < 32; ++k) expected += k * 10;
  EXPECT_EQ(cluster.settle(map.reduce_plus()), expected - 70 + 1);
}

TEST(DistMapTest, StringKeysAndDigestPlacementIndependence) {
  // Same content, different placements: digests must match.
  auto build = [](Cluster& cluster, int spread) {
    AsyncClient client(*cluster.servers[0]);
    StrMap map(client, "s", 4);
    for (std::size_t p = 0; p < 4; ++p) {
      StrMap::bind_partition(*cluster.servers[p % spread], cluster.directory,
                             "StrMapPart", "s", p);
    }
    for (int k = 0; k < 20; ++k) {
      cluster.settle(map.put("key" + std::to_string(k), k));
    }
    return cluster.settle(map.digest());
  };
  Cluster one(3);
  Cluster spread(3);
  const std::uint64_t digest_one = build(one, 1);
  const std::uint64_t digest_spread = build(spread, 3);
  EXPECT_EQ(digest_one, digest_spread);
  EXPECT_NE(digest_one, dist::kFnvOffset);
}

TEST(DistMapTest, SurvivesPartitionMigrationMidStream) {
  Cluster cluster(3);
  AsyncClient client(*cluster.servers[0]);
  IntMap map(client, "m", 2);
  IntMap::bind_partition(*cluster.servers[0], cluster.directory, "IntMapPart",
                         "m", 0);
  IntMap::bind_partition(*cluster.servers[0], cluster.directory, "IntMapPart",
                         "m", 1);

  for (std::uint64_t k = 0; k < 16; ++k) cluster.settle(map.put(k, 1));
  ASSERT_EQ(map.table().repairs(), 0);

  // Relocate both partitions out from under the client.
  cluster.settle(client.move("m.p0", cluster.ids[1]));
  cluster.settle(client.move("m.p1", cluster.ids[2]));

  // Every key still reachable; the facade chases and the table repairs.
  for (std::uint64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(cluster.settle(map.get(k)), std::optional<std::int64_t>(1));
  }
  EXPECT_EQ(cluster.settle(map.size()), 16u);
  EXPECT_EQ(map.table().repairs(), 2);
  EXPECT_EQ(cluster.sim.stats().counter("rts.dist_table_repairs"), 2);

  // Routing now points at the new hosts.
  EXPECT_EQ(map.table().route(0), cluster.ids[1]);
  EXPECT_EQ(map.table().route(1), cluster.ids[2]);
}

// --- DistArray -------------------------------------------------------------

TEST(DistArrayTest, BlocksAndReductions) {
  Cluster cluster(3);
  AsyncClient client(*cluster.servers[0]);
  const std::uint64_t n = 10;
  IntArray array(client, "a", 4, n);
  for (std::size_t p = 0; p < 4; ++p) {
    IntArray::bind_partition(*cluster.servers[p % 3], cluster.directory,
                             "IntArrayPart", "a", p, 4, n);
  }

  EXPECT_EQ(cluster.settle(array.size()), n);
  EXPECT_TRUE(cluster.settle(array.fill(2)));
  EXPECT_EQ(cluster.settle(array.reduce_plus()), 20);

  EXPECT_EQ(cluster.settle(array.set(9, 7)), 2);  // returns previous value
  EXPECT_EQ(cluster.settle(array.get(9)), 7);
  EXPECT_EQ(cluster.settle(array.reduce_plus()), 25);

  // Same content, same digest, regardless of where blocks live.
  const std::uint64_t digest_before = cluster.settle(array.digest());
  cluster.settle(client.move("a.p0", cluster.ids[2]));
  EXPECT_EQ(cluster.settle(array.digest()), digest_before);

  // Out-of-range index faults client-side, before any traffic.
  EXPECT_THROW((void)array.get(n), common::MageError);
}

// --- mage.manifest ---------------------------------------------------------

TEST(ManifestTest, ListsPrefixedComponentsWithEpochs) {
  Cluster cluster(2);
  AsyncClient client(*cluster.servers[0]);
  IntMap::bind_partition(*cluster.servers[1], cluster.directory, "IntMapPart",
                         "m", 0);
  IntMap::bind_partition(*cluster.servers[1], cluster.directory, "IntMapPart",
                         "m", 1);
  IntMap::bind_partition(*cluster.servers[1], cluster.directory, "IntMapPart",
                         "other", 0);

  auto entries = cluster.settle(client.manifest(cluster.ids[1], "m.p"));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "m.p0");
  EXPECT_EQ(entries[1].first, "m.p1");

  // Moving a partition bumps its epoch; the manifest reports the registry's
  // current epoch and drops the name from the old host.
  cluster.settle(client.move("m.p0", cluster.ids[0]));
  entries = cluster.settle(client.manifest(cluster.ids[1], "m.p"));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, "m.p1");
  auto here = cluster.settle(client.manifest(cluster.ids[0], "m.p"));
  ASSERT_EQ(here.size(), 1u);
  EXPECT_EQ(here[0].first, "m.p0");
  EXPECT_GT(here[0].second, entries[0].second);  // moved epoch > unmoved

  // Empty prefix lists everything local.
  auto all = cluster.settle(client.manifest(cluster.ids[1], ""));
  EXPECT_EQ(all.size(), 2u);  // m.p1 + other.p0
}

// --- central Rebalancer ----------------------------------------------------

TEST(RebalancerTest, CentralPolicyMovesHotPartitionToCoolNode) {
  Cluster cluster(3);
  AsyncClient prober(*cluster.servers[0]);
  AsyncClient mover(*cluster.servers[0]);
  IntMap map(mover, "m", 4);
  for (std::size_t p = 0; p < 4; ++p) {
    IntMap::bind_partition(*cluster.servers[0], cluster.directory, "IntMapPart",
                           "m", p);
  }

  // Hand-set loads: node 0 hot, node 2 idle.
  cluster.net.set_load(cluster.ids[0], 9.0);
  cluster.net.set_load(cluster.ids[1], 4.0);
  cluster.net.set_load(cluster.ids[2], 0.0);

  dist::Rebalancer::Config config;
  config.prefix = dist::partition_prefix("m");
  config.tick_us = 5'000;
  config.max_ticks = 3;
  config.max_moves_per_tick = 1;
  dist::Rebalancer rebalancer(cluster.net, prober, mover, cluster.ids,
                              std::move(config));
  rebalancer.start();
  cluster.sim.run_until([&] { return rebalancer.ticks() >= 3; });
  // Drain the in-flight manifest/move chain from the last round.
  cluster.sim.run_for(200'000);

  EXPECT_GE(rebalancer.moves_issued(), 1);
  EXPECT_EQ(cluster.sim.stats().counter("rts.rebalance_ticks"), 3);
  EXPECT_GE(cluster.sim.stats().counter("rts.rebalance_moves"), 1);
  EXPECT_GE(cluster.sim.stats().counter("rts.migrations"), 1);
  // The stolen partition now lives on the idle node: manifest confirms.
  auto cool = cluster.settle(prober.manifest(cluster.ids[2], "m.p"));
  EXPECT_GE(cool.size(), 1u);

  // Guards: balanced loads issue no further moves.
  const std::int64_t moves = rebalancer.moves_issued();
  cluster.net.set_load(cluster.ids[0], 2.0);
  cluster.net.set_load(cluster.ids[1], 2.0);
  cluster.net.set_load(cluster.ids[2], 2.0);
  dist::Rebalancer::Config balanced;
  balanced.prefix = dist::partition_prefix("m");
  balanced.tick_us = 5'000;
  balanced.max_ticks = 2;
  dist::Rebalancer quiet(cluster.net, prober, mover, cluster.ids,
                         std::move(balanced));
  quiet.start();
  cluster.sim.run_until([&] { return quiet.ticks() >= 2; });
  cluster.sim.run_for(100'000);
  EXPECT_EQ(quiet.moves_issued(), 0);
  EXPECT_EQ(rebalancer.moves_issued(), moves);
}

}  // namespace
}  // namespace mage::rts
