// Unit tests for the simulated network: delivery timing, connection warmup,
// ordering, loss/partition injection, tracing, load.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "net/cost_model.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace mage::net {
namespace {

struct NetFixture : ::testing::Test {
  sim::Simulation sim{1};
  CostModel model = CostModel::zero();

  std::unique_ptr<Network> make(CostModel m) {
    auto net = std::make_unique<Network>(sim, m);
    a = net->add_node("a");
    b = net->add_node("b");
    c = net->add_node("c");
    return net;
  }

  common::NodeId a, b, c;
};

Message msg(common::NodeId from, common::NodeId to, std::size_t payload = 4) {
  return Message{from,          to, common::intern_verb("test"),
                 MsgKind::Request, {},
                 serial::Buffer(std::vector<std::uint8_t>(payload, 0))};
}

TEST_F(NetFixture, DeliversToHandler) {
  auto net = make(CostModel::zero());
  std::optional<Message> got;
  net->set_handler(b, [&got](Message m) { got = std::move(m); });
  net->send(msg(a, b));
  sim.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->from, a);
  EXPECT_EQ(got->verb, common::intern_verb("test"));
  EXPECT_EQ(got->label(), "test");
}

TEST_F(NetFixture, WireSizeIncludesHeader) {
  EXPECT_EQ(msg(a, b, 10).wire_size(), 10 + kHeaderBytes);
}

TEST_F(NetFixture, DeliveryTimeMatchesCostModel) {
  CostModel m = CostModel::zero();
  m.propagation_us = 100;
  m.bytes_per_usec = 1.0;  // 1 byte per us
  m.per_message_cpu_us = 50;
  auto net = make(m);
  common::SimTime delivered_at = -1;
  net->set_handler(b, [&](Message) { delivered_at = sim.now(); });
  net->send(msg(a, b, 4));  // wire = 4 + 96 = 100 bytes -> 100us
  sim.run_until_idle();
  EXPECT_EQ(delivered_at, 100 + 100 + 50);
}

TEST_F(NetFixture, ConnectionSetupChargedOncePerPair) {
  CostModel m = CostModel::zero();
  m.propagation_us = 10;
  m.connection_setup_us = 1000;
  m.bytes_per_usec = 1e9;
  auto net = make(m);
  std::vector<common::SimTime> deliveries;
  net->set_handler(b, [&](Message) { deliveries.push_back(sim.now()); });
  net->send(msg(a, b));
  sim.run_until_idle();
  net->send(msg(a, b));
  sim.run_until_idle();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 1010);           // cold: setup + propagation
  EXPECT_EQ(deliveries[1] - deliveries[0], 10);  // warm: propagation only
  EXPECT_EQ(sim.stats().counter("net.connections_opened"), 1);
}

TEST_F(NetFixture, ConnectionIsWarmInBothDirections) {
  CostModel m = CostModel::zero();
  m.propagation_us = 10;
  m.connection_setup_us = 1000;
  auto net = make(m);
  net->set_handler(b, [](Message) {});
  net->set_handler(a, [](Message) {});
  net->send(msg(a, b));
  sim.run_until_idle();
  const auto t0 = sim.now();
  net->send(msg(b, a));  // reverse direction reuses the connection
  sim.run_until_idle();
  EXPECT_EQ(sim.now() - t0, 10);
}

TEST_F(NetFixture, ResetConnectionsRestoresColdCost) {
  CostModel m = CostModel::zero();
  m.connection_setup_us = 500;
  m.propagation_us = 1;
  auto net = make(m);
  net->set_handler(b, [](Message) {});
  net->send(msg(a, b));
  sim.run_until_idle();
  net->reset_connections();
  const auto t0 = sim.now();
  net->send(msg(a, b));
  sim.run_until_idle();
  EXPECT_EQ(sim.now() - t0, 501);
}

TEST_F(NetFixture, LoopbackIsCheapAndLossless) {
  CostModel m = CostModel::zero();
  m.local_invoke_us = 3;
  m.connection_setup_us = 1000;
  auto net = make(m);
  net->set_loss_rate(1.0);  // would drop every network message
  bool got = false;
  net->set_handler(a, [&](Message) { got = true; });
  net->send(msg(a, a));
  sim.run_until_idle();
  EXPECT_TRUE(got);
  EXPECT_EQ(sim.now(), 3);
  EXPECT_EQ(sim.stats().counter("net.connections_opened"), 0);
}

TEST_F(NetFixture, LossRateDropsMessages) {
  auto net = make(CostModel::zero());
  net->set_loss_rate(0.5);
  int got = 0;
  net->set_handler(b, [&](Message) { ++got; });
  for (int i = 0; i < 200; ++i) net->send(msg(a, b));
  sim.run_until_idle();
  EXPECT_GT(got, 50);
  EXPECT_LT(got, 150);
  EXPECT_EQ(got + sim.stats().counter("net.messages_dropped"), 200);
}

TEST_F(NetFixture, PartitionBlocksBothDirections) {
  auto net = make(CostModel::zero());
  int got = 0;
  net->set_handler(a, [&](Message) { ++got; });
  net->set_handler(b, [&](Message) { ++got; });
  net->set_partitioned(a, b, true);
  net->send(msg(a, b));
  net->send(msg(b, a));
  sim.run_until_idle();
  EXPECT_EQ(got, 0);
  net->set_partitioned(a, b, false);
  net->send(msg(a, b));
  sim.run_until_idle();
  EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, PartitionDoesNotAffectThirdParty) {
  auto net = make(CostModel::zero());
  bool got = false;
  net->set_handler(c, [&](Message) { got = true; });
  net->set_partitioned(a, b, true);
  net->send(msg(a, c));
  sim.run_until_idle();
  EXPECT_TRUE(got);
}

TEST_F(NetFixture, ExtraLatencyIsDirectional) {
  CostModel m = CostModel::zero();
  m.propagation_us = 10;
  auto net = make(m);
  net->set_extra_latency(a, b, 500);
  common::SimTime ab = -1, ba = -1;
  net->set_handler(b, [&](Message) { ab = sim.now(); });
  net->set_handler(a, [&](Message) { ba = sim.now(); });
  net->send(msg(a, b));
  sim.run_until_idle();
  const auto t0 = sim.now();
  net->send(msg(b, a));
  sim.run_until_idle();
  EXPECT_EQ(ab, 510);
  EXPECT_EQ(ba - t0, 10);
}

TEST_F(NetFixture, InOrderDeliveryPerLink) {
  // A big message followed by a small one: FIFO ordering must hold even
  // though the small one would naturally arrive first.
  CostModel m = CostModel::zero();
  m.propagation_us = 10;
  m.bytes_per_usec = 0.001;  // brutally slow wire
  auto net = make(m);
  std::vector<std::string> order;
  net->set_handler(b, [&](Message m2) { order.push_back(m2.label()); });
  Message big{a,           b, common::intern_verb("big"),
              MsgKind::Request, {},
              serial::Buffer(std::vector<std::uint8_t>(10'000, 0))};
  Message small{a, b, common::intern_verb("small"), MsgKind::Request, {}, {}};
  net->send(big);
  net->send(small);
  sim.run_until_idle();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "big");
  EXPECT_EQ(order[1], "small");
}

TEST_F(NetFixture, TraceRecordsDeliveriesAndDrops) {
  auto net = make(CostModel::zero());
  net->set_tracing(true);
  net->set_handler(b, [](Message) {});
  net->send(msg(a, b));
  net->set_partitioned(a, b, true);
  net->send(msg(a, b));
  sim.run_until_idle();
  ASSERT_EQ(net->trace().size(), 2u);
  EXPECT_FALSE(net->trace()[0].dropped);
  EXPECT_TRUE(net->trace()[1].dropped);
  net->clear_trace();
  EXPECT_TRUE(net->trace().empty());
}

TEST_F(NetFixture, LoadIsPerNode) {
  auto net = make(CostModel::zero());
  net->set_load(a, 42.0);
  EXPECT_DOUBLE_EQ(net->load(a), 42.0);
  EXPECT_DOUBLE_EQ(net->load(b), 0.0);
}

TEST_F(NetFixture, NodeLabels) {
  auto net = make(CostModel::zero());
  EXPECT_EQ(net->label(a), "a");
  EXPECT_EQ(net->label(c), "c");
  EXPECT_EQ(net->node_count(), 3u);
  EXPECT_EQ(net->node_ids().size(), 3u);
}

TEST_F(NetFixture, StatsCountMessages) {
  auto net = make(CostModel::zero());
  net->set_handler(b, [](Message) {});
  net->send(msg(a, b, 10));
  sim.run_until_idle();
  EXPECT_EQ(sim.stats().counter("net.messages_sent"), 1);
  EXPECT_EQ(sim.stats().counter("net.messages_delivered"), 1);
  EXPECT_EQ(sim.stats().counter("net.bytes_sent"),
            static_cast<std::int64_t>(10 + kHeaderBytes));
}

// --- cost model presets -----------------------------------------------------

TEST(CostModel, WireTimeMath) {
  CostModel m;
  m.bytes_per_usec = 1.25;  // 10 Mb/s
  EXPECT_EQ(m.wire_time(1250), 1000);
}

TEST(CostModel, MarshalTimeMath) {
  CostModel m;
  m.marshal_us_per_byte = 2.0;
  EXPECT_EQ(m.marshal_time(100), 200);
}

TEST(CostModel, ClassicPresetIsTenMbit) {
  const auto m = CostModel::jdk122_classic();
  EXPECT_DOUBLE_EQ(m.bytes_per_usec, 1.25);
  EXPECT_GT(m.rmi_client_overhead_us, 1000);
  EXPECT_GT(m.engine_warmup_us, 10'000);
}

TEST(CostModel, ModernPresetIsMuchFaster) {
  const auto classic = CostModel::jdk122_classic();
  const auto modern = CostModel::modern_lan();
  EXPECT_LT(modern.rmi_client_overhead_us, classic.rmi_client_overhead_us);
  EXPECT_GT(modern.bytes_per_usec, classic.bytes_per_usec);
}

}  // namespace
}  // namespace mage::net
