// Large-federation stress and cross-feature interaction tests: many nodes,
// many shared objects, locks + migration + loss + statics all at once.
#include <gtest/gtest.h>

#include "support/test_objects.hpp"

namespace mage::rts {
namespace {

using testing::make_logic_system;

// A 12-node federation where every node both hosts and uses components.
TEST(SystemStress, TwelveNodeChurn) {
  constexpr int kNodes = 12;
  auto system = make_logic_system(kNodes, 4242);
  auto& rng = system->simulation().rng();

  // One shared component per node.
  for (int i = 1; i <= kNodes; ++i) {
    system->client(common::NodeId{static_cast<std::uint32_t>(i)})
        .create_component("svc" + std::to_string(i), "Counter",
                          /*is_public=*/true);
  }

  std::map<std::string, std::int64_t> expected;
  for (int op = 0; op < 400; ++op) {
    const auto actor = common::NodeId{
        static_cast<std::uint32_t>(rng.next_below(kNodes) + 1)};
    const std::string name =
        "svc" + std::to_string(rng.next_below(kNodes) + 1);
    auto& client = system->client(actor);
    if (rng.next_bool(0.3)) {
      client.move(name, common::NodeId{static_cast<std::uint32_t>(
                            rng.next_below(kNodes) + 1)});
    } else {
      common::NodeId cloc = common::kNoNode;
      client.invoke<std::int64_t>(cloc, name, "increment");
      ++expected[name];
    }
  }

  // Every component: exactly one copy, exact count, findable by all.
  for (int i = 1; i <= kNodes; ++i) {
    const std::string name = "svc" + std::to_string(i);
    int copies = 0;
    for (auto node : system->nodes()) {
      if (system->server(node).registry().has_local(name)) ++copies;
    }
    ASSERT_EQ(copies, 1) << name;
    common::NodeId cloc = common::kNoNode;
    EXPECT_EQ(system->client(common::NodeId{1})
                  .invoke<std::int64_t>(cloc, name, "get"),
              expected[name])
        << name;
  }
}

// Locks + migration + message loss together: the full §4 machinery under
// adverse conditions, with application-level correctness intact.
TEST(SystemStress, LockedTransfersUnderLoss) {
  auto system = make_logic_system(4, 777);
  system->network().set_loss_rate(0.12);
  system->client(common::NodeId{1})
      .create_component("ledger", "Counter", /*is_public=*/true);

  std::int64_t expected = 0;
  for (int round = 0; round < 12; ++round) {
    const common::NodeId actor{
        static_cast<std::uint32_t>((round % 4) + 1)};
    auto& client = system->client(actor);
    auto lock = client.lock("ledger", actor);
    core::Grev grev(client, "ledger", actor);
    auto handle = grev.bind();
    (void)handle.invoke<std::int64_t>("add", std::int64_t{round});
    expected += round;
    client.unlock(lock);
  }
  common::NodeId cloc = common::kNoNode;
  EXPECT_EQ(system->client(common::NodeId{1})
                .invoke<std::int64_t>(cloc, "ledger", "get"),
            expected);
  EXPECT_GT(system->stats().counter("rmi.retransmissions"), 0);
}

// Statics under migration churn: instances fly around while class data
// stays put and exact.
TEST(SystemStress, StaticsExactUnderChurn) {
  auto system = make_logic_system(5, 999);
  system->world().set_statics_home("Counter", common::NodeId{2});
  system->client(common::NodeId{1})
      .create_component("obj", "Counter", /*is_public=*/true);
  auto& rng = system->simulation().rng();

  std::int64_t writes = 0;
  for (int op = 0; op < 120; ++op) {
    auto& client = system->client(
        common::NodeId{static_cast<std::uint32_t>(rng.next_below(5) + 1)});
    if (rng.next_bool(0.5)) {
      client.move("obj", common::NodeId{static_cast<std::uint32_t>(
                             rng.next_below(5) + 1)});
    } else {
      client.static_put<std::int64_t>("Counter", "writes", ++writes);
    }
  }
  EXPECT_EQ(system->client(common::NodeId{4})
                .static_get<std::int64_t>("Counter", "writes"),
            writes);
}

// Domain + restriction + lock interplay: a component confined to one
// domain keeps its lock protocol working across migrations inside it.
TEST(SystemStress, RestrictedComponentLocksInsideDomain) {
  auto system = make_logic_system(4);
  const common::NodeId a1{1}, a2{2}, b1{3}, b2{4};
  system->assign_domain(a1, "A");
  system->assign_domain(a2, "A");
  system->assign_domain(b1, "B");
  system->assign_domain(b2, "B");
  system->client(a1).create_component("obj", "Counter", /*is_public=*/true);

  for (int round = 0; round < 6; ++round) {
    const common::NodeId target = (round % 2 == 0) ? a2 : a1;
    auto& client = system->client(target);
    auto lock = client.lock("obj", target);
    core::RestrictedAttribute attr(
        std::make_unique<core::Grev>(client, "obj", target), {a1, a2},
        {a1, a2});
    (void)attr.bind().invoke<std::int64_t>("increment");
    client.unlock(lock);
  }

  // Six increments, object still inside domain A.
  common::NodeId cloc = common::kNoNode;
  EXPECT_EQ(system->client(b1).invoke<std::int64_t>(cloc, "obj", "get"), 6);
  EXPECT_TRUE(system->server(a1).registry().has_local("obj") ||
              system->server(a2).registry().has_local("obj"));
}

// Many concurrent one-way agent invocations park distinct results.
TEST(SystemStress, ManyAgentsParkIndependentResults) {
  auto system = make_logic_system(3);
  auto& client = system->client(common::NodeId{1});
  constexpr int kAgents = 16;
  for (int i = 0; i < kAgents; ++i) {
    client.create_component("agent" + std::to_string(i), "Counter");
  }
  std::vector<core::RemoteHandle> handles;
  for (int i = 0; i < kAgents; ++i) {
    core::MAgent agent(client, "agent" + std::to_string(i),
                       common::NodeId{static_cast<std::uint32_t>(
                           (i % 2) + 2)});
    auto handle = agent.bind();
    handle.invoke_oneway("add", static_cast<std::int64_t>(i));
    handles.push_back(handle);
  }
  for (int i = 0; i < kAgents; ++i) {
    EXPECT_EQ(handles[i].fetch_result<std::int64_t>(), i);
  }
}

// Deterministic replay at federation scale.
TEST(SystemStress, LargeRunIsSeedDeterministic) {
  auto fingerprint = [](std::uint64_t seed) {
    auto system = make_logic_system(6, seed);
    system->network().set_loss_rate(0.1);
    system->client(common::NodeId{1})
        .create_component("obj", "Counter", true);
    auto& rng = system->simulation().rng();
    for (int op = 0; op < 60; ++op) {
      auto& client = system->client(common::NodeId{
          static_cast<std::uint32_t>(rng.next_below(6) + 1)});
      if (rng.next_bool(0.4)) {
        client.move("obj", common::NodeId{static_cast<std::uint32_t>(
                               rng.next_below(6) + 1)});
      } else {
        common::NodeId cloc = common::kNoNode;
        (void)client.invoke<std::int64_t>(cloc, "obj", "increment");
      }
    }
    return std::make_pair(system->simulation().now(),
                          system->stats().counter("net.bytes_sent"));
  };
  EXPECT_EQ(fingerprint(31337), fingerprint(31337));
}

}  // namespace
}  // namespace mage::rts
