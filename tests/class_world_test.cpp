// Unit tests for the class world: registration, factories, typed method
// marshalling, class caches.
#include <gtest/gtest.h>

#include "rts/class_cache.hpp"
#include "rts/class_world.hpp"
#include "support/test_objects.hpp"

namespace mage::rts {
namespace {

using testing::Counter;
using testing::Notebook;

struct WorldFixture : ::testing::Test {
  ClassWorld world;

  WorldFixture() {
    ClassBuilder<Counter>(world, "Counter", 1024)
        .method("increment", &Counter::increment)
        .method("add", &Counter::add)
        .method("get", &Counter::get);
    ClassBuilder<Notebook>(world, "Notebook")
        .method("append", &Notebook::append)
        .method("entry", &Notebook::entry)
        .method("size", &Notebook::size);
  }
};

TEST_F(WorldFixture, ContainsAndDescriptor) {
  EXPECT_TRUE(world.contains("Counter"));
  EXPECT_FALSE(world.contains("Nope"));
  EXPECT_EQ(world.descriptor("Counter").code_size, 1024u);
  EXPECT_EQ(world.descriptor("Notebook").code_size, 2048u);  // default
}

TEST_F(WorldFixture, UnknownDescriptorThrows) {
  EXPECT_THROW((void)world.descriptor("Nope"), common::SerializationError);
}

TEST_F(WorldFixture, InstantiateProducesFreshObject) {
  auto a = world.instantiate("Counter");
  auto b = world.instantiate("Counter");
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(dynamic_cast<Counter&>(*a).get(), 0);
}

TEST_F(WorldFixture, DeserializeRestoresState) {
  Counter original;
  original.set(99);
  serial::Writer w;
  original.serialize(w);
  serial::Reader r(w.bytes());
  auto restored = world.deserialize("Counter", r);
  EXPECT_EQ(dynamic_cast<Counter&>(*restored).get(), 99);
}

TEST_F(WorldFixture, MethodDispatchNoArgs) {
  auto obj = world.instantiate("Counter");
  const auto& m = world.method("Counter", "increment");
  serial::Writer noargs;
  auto result = m.fn(*obj, noargs.take());
  serial::Reader r(result);
  EXPECT_EQ(serial::get<std::int64_t>(r), 1);
}

TEST_F(WorldFixture, MethodDispatchWithArgs) {
  auto obj = world.instantiate("Counter");
  serial::Writer args;
  serial::put<std::int64_t>(args, 40);
  auto result = world.method("Counter", "add").fn(*obj, args.take());
  serial::Reader r(result);
  EXPECT_EQ(serial::get<std::int64_t>(r), 40);
}

TEST_F(WorldFixture, MethodDispatchStringArgs) {
  auto obj = world.instantiate("Notebook");
  serial::Writer args;
  serial::put<std::string>(args, "first entry");
  (void)world.method("Notebook", "append").fn(*obj, args.take());

  serial::Writer idx;
  serial::put<std::int64_t>(idx, 0);
  auto result = world.method("Notebook", "entry").fn(*obj, idx.take());
  serial::Reader r(result);
  EXPECT_EQ(serial::get<std::string>(r), "first entry");
}

TEST_F(WorldFixture, VoidMethodReturnsUnit) {
  auto obj = world.instantiate("Notebook");
  serial::Writer args;
  serial::put<std::string>(args, "x");
  auto result = world.method("Notebook", "append").fn(*obj, args.take());
  serial::Reader r(result);
  EXPECT_NO_THROW((void)serial::get<serial::Unit>(r));
  EXPECT_TRUE(r.at_end());
}

TEST_F(WorldFixture, ConstMethodDispatch) {
  auto obj = world.instantiate("Counter");
  serial::Writer noargs;
  auto result = world.method("Counter", "get").fn(*obj, noargs.take());
  serial::Reader r(result);
  EXPECT_EQ(serial::get<std::int64_t>(r), 0);
}

TEST_F(WorldFixture, UnknownMethodThrows) {
  EXPECT_THROW((void)world.method("Counter", "frobnicate"),
               common::RemoteInvocationError);
}

TEST_F(WorldFixture, WrongObjectTypeThrows) {
  auto notebook = world.instantiate("Notebook");
  serial::Writer noargs;
  EXPECT_THROW(
      (void)world.method("Counter", "increment").fn(*notebook, noargs.take()),
      common::RemoteInvocationError);
}

TEST_F(WorldFixture, MethodCostDefaultsToZero) {
  EXPECT_EQ(world.method("Counter", "increment").cost_us, 0);
}

TEST(ClassWorldCost, MethodCostIsStored) {
  ClassWorld world;
  ClassBuilder<Counter>(world, "Counter")
      .method("increment", &Counter::increment, /*cost_us=*/1500);
  EXPECT_EQ(world.method("Counter", "increment").cost_us, 1500);
}

// --- class cache -----------------------------------------------------------------

TEST(ClassCache, InstallAndHas) {
  ClassCache cache;
  EXPECT_FALSE(cache.has("Counter"));
  cache.install("Counter");
  EXPECT_TRUE(cache.has("Counter"));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ClassCache, ImageReceiptCachesWhenEnabled) {
  ClassCache cache;
  cache.on_image_received("Counter");
  EXPECT_TRUE(cache.has("Counter"));
}

TEST(ClassCache, CachingDisabledForgetsImages) {
  ClassCache cache;
  cache.set_caching_enabled(false);
  cache.on_image_received("Counter");
  EXPECT_FALSE(cache.has("Counter"));
  // install() (deployment-time classpath) is unaffected by the switch.
  cache.install("Base");
  EXPECT_TRUE(cache.has("Base"));
}

}  // namespace
}  // namespace mage::rts
