// Tests for condensed remote evaluation (the Section 5 optimization) and
// its interaction with access control, capacity, and class shipping.
#include <gtest/gtest.h>

#include "support/test_objects.hpp"

namespace mage::rts {
namespace {

using testing::make_logic_system;

struct CondensedFixture : ::testing::Test {
  std::unique_ptr<MageSystem> system = make_logic_system(3);
  common::NodeId n1{1}, n2{2}, n3{3};
};

TEST_F(CondensedFixture, ExecInstantiatesInvokesAndReturns) {
  const auto result = system->client(n1).exec_at<std::int64_t>(
      n2, "Counter", "worker", "add", std::int64_t{7});
  EXPECT_EQ(result, 7);
  EXPECT_TRUE(system->server(n2).registry().has_local("worker"));
}

TEST_F(CondensedFixture, ObjectRemainsUsableAfterExec) {
  (void)system->client(n1).exec_at<std::int64_t>(n2, "Counter", "worker",
                                                 "increment");
  common::NodeId cloc = n2;
  EXPECT_EQ(system->client(n1).invoke<std::int64_t>(cloc, "worker",
                                                    "increment"),
            2);
  // The exec recorded the binding: finds work from anywhere.
  EXPECT_EQ(system->client(n3).find("worker"), n2);
}

TEST_F(CondensedFixture, ExecShipsClassOnDemand) {
  EXPECT_FALSE(system->server(n2).class_cache().has("Counter"));
  (void)system->client(n1).exec_at<std::int64_t>(n2, "Counter", "w",
                                                 "increment");
  EXPECT_TRUE(system->server(n2).class_cache().has("Counter"));
}

TEST_F(CondensedFixture, ExecIsOneRmiCallWarm) {
  (void)system->client(n1).exec_at<std::int64_t>(n2, "Counter", "w",
                                                 "increment");
  const auto calls = system->stats().counter("rmi.calls");
  (void)system->client(n1).exec_at<std::int64_t>(n2, "Counter", "w",
                                                 "increment");
  EXPECT_EQ(system->stats().counter("rmi.calls") - calls, 1);
}

TEST_F(CondensedFixture, ExecRebindsFreshObjectEachCall) {
  // Factory semantics: each exec instantiates anew under the name.
  EXPECT_EQ(system->client(n1).exec_at<std::int64_t>(n2, "Counter", "w",
                                                     "increment"),
            1);
  EXPECT_EQ(system->client(n1).exec_at<std::int64_t>(n2, "Counter", "w",
                                                     "increment"),
            1);
}

TEST_F(CondensedFixture, MethodErrorPropagates) {
  EXPECT_THROW((void)system->client(n1).exec_at<std::int64_t>(
                   n2, "Grumpy", "g", "refuse"),
               common::RemoteInvocationError);
}

TEST_F(CondensedFixture, UnknownMethodPropagates) {
  EXPECT_THROW((void)system->client(n1).exec_at<std::int64_t>(
                   n2, "Counter", "w", "explode"),
               common::RemoteInvocationError);
}

TEST_F(CondensedFixture, AccessControlGatesExec) {
  system->server(n2).access().deny_node(Operation::Instantiate, n1);
  EXPECT_THROW((void)system->client(n1).exec_at<std::int64_t>(
                   n2, "Counter", "w", "increment"),
               common::AccessDeniedError);
}

TEST_F(CondensedFixture, CapacityGatesExec) {
  system->server(n2).resources().max_objects = 0;
  EXPECT_THROW((void)system->client(n1).exec_at<std::int64_t>(
                   n2, "Counter", "w", "increment"),
               common::CapacityError);
}

TEST_F(CondensedFixture, ExecCheaperThanTraditionalRevWarm) {
  auto classic = testing::make_classic_system(2);
  classic->install_class(common::NodeId{1}, "Counter");
  auto run_rev = [&] {
    core::Rev rev(classic->client(common::NodeId{1}), "Counter", "w",
                  common::NodeId{2}, core::FactoryMode::Factory);
    (void)rev.bind().invoke<std::int64_t>("increment");
  };
  auto run_exec = [&] {
    (void)classic->client(common::NodeId{1})
        .exec_at<std::int64_t>(common::NodeId{2}, "Counter", "w",
                               "increment");
  };
  run_rev();  // warm everything
  run_exec();
  const auto t0 = classic->simulation().now();
  run_rev();
  const auto rev_warm = classic->simulation().now() - t0;
  const auto t1 = classic->simulation().now();
  run_exec();
  const auto exec_warm = classic->simulation().now() - t1;
  EXPECT_LT(exec_warm * 2, rev_warm);  // at least 2x cheaper
}

TEST_F(CondensedFixture, ExecWithMultipleArgs) {
  common::NodeId cloc = common::kNoNode;
  (void)cloc;
  // Notebook::entry(index) after append via regular path, exec'd object:
  const auto size = system->client(n1).exec_at<std::int64_t>(
      n2, "Notebook", "nb", "size");
  EXPECT_EQ(size, 0);
}

}  // namespace
}  // namespace mage::rts
