// Property-style tests: randomized operation sequences checked against the
// system's core invariants.
//
//   I1  Singleton: at every quiescent point an object has exactly one live
//       copy in the federation.
//   I2  Durability: object state equals the state implied by the applied
//       operations (no lost or duplicated increments), across any number of
//       migrations and any loss rate the protocols tolerate.
//   I3  Reachability: find() converges to the live copy from any node.
//   I4  Determinism: a seed fully determines the run (stats fingerprint).
#include <gtest/gtest.h>

#include "support/test_objects.hpp"

namespace mage::rts {
namespace {

using testing::make_logic_system;

struct Scenario {
  int nodes;
  int operations;
  double loss_rate;
  std::uint64_t seed;
};

class RandomWalk : public ::testing::TestWithParam<Scenario> {};

TEST_P(RandomWalk, InvariantsHoldThroughRandomOps) {
  const auto& scenario = GetParam();
  auto system = make_logic_system(scenario.nodes, scenario.seed);
  system->network().set_loss_rate(scenario.loss_rate);
  auto& rng = system->simulation().rng();

  const common::NodeId home{1};
  system->client(home).create_component("obj", "Counter", true);

  std::int64_t expected = 0;
  for (int op = 0; op < scenario.operations; ++op) {
    const common::NodeId actor{
        static_cast<std::uint32_t>(rng.next_below(scenario.nodes) + 1)};
    auto& client = system->client(actor);
    switch (rng.next_below(3)) {
      case 0: {  // migrate to a random node
        const common::NodeId to{
            static_cast<std::uint32_t>(rng.next_below(scenario.nodes) + 1)};
        client.move("obj", to);
        break;
      }
      case 1: {  // invoke
        common::NodeId cloc = common::kNoNode;
        EXPECT_EQ(client.invoke<std::int64_t>(cloc, "obj", "increment"),
                  ++expected);
        break;
      }
      case 2: {  // find from a random vantage point
        EXPECT_NO_THROW((void)client.find("obj"));
        break;
      }
    }

    // I1: exactly one live copy at every quiescent point.
    int copies = 0;
    for (auto node : system->nodes()) {
      if (system->server(node).registry().has_local("obj")) ++copies;
    }
    ASSERT_EQ(copies, 1) << "op " << op;
  }

  // I2 + I3: final state is exact and reachable from every node.
  for (auto node : system->nodes()) {
    common::NodeId cloc = common::kNoNode;
    EXPECT_EQ(
        system->client(node).invoke<std::int64_t>(cloc, "obj", "get"),
        expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, RandomWalk,
    ::testing::Values(Scenario{2, 40, 0.0, 1}, Scenario{3, 40, 0.0, 2},
                      Scenario{5, 60, 0.0, 3}, Scenario{8, 60, 0.0, 4},
                      Scenario{3, 40, 0.15, 5}, Scenario{5, 50, 0.25, 6},
                      Scenario{4, 30, 0.35, 7}, Scenario{6, 80, 0.1, 8}));

// I4: the same seed produces byte-identical behaviour; different seeds
// diverge.  (Determinism is what makes every other test in this repo
// reproducible.)
TEST(Determinism, SameSeedSameFingerprint) {
  auto fingerprint = [](std::uint64_t seed) {
    auto system = make_logic_system(4, seed);
    system->network().set_loss_rate(0.2);
    system->client(common::NodeId{1}).create_component("obj", "Counter",
                                                       true);
    auto& rng = system->simulation().rng();
    for (int op = 0; op < 30; ++op) {
      const common::NodeId to{
          static_cast<std::uint32_t>(rng.next_below(4) + 1)};
      system
          ->client(common::NodeId{static_cast<std::uint32_t>(op % 4 + 1)})
          .move("obj", to);
    }
    return std::make_tuple(system->simulation().now(),
                           system->stats().counter("net.messages_sent"),
                           system->stats().counter("rmi.retransmissions"),
                           system->stats().counter("rts.migrations"));
  };
  EXPECT_EQ(fingerprint(42), fingerprint(42));
  EXPECT_NE(fingerprint(42), fingerprint(43));
}

// Multiple independent objects migrate concurrently without interference.
class MultiObject : public ::testing::TestWithParam<int> {};

TEST_P(MultiObject, IndependentObjectsKeepIndependentState) {
  const int object_count = GetParam();
  auto system = make_logic_system(4, 99 + object_count);
  auto& rng = system->simulation().rng();

  for (int i = 0; i < object_count; ++i) {
    system->client(common::NodeId{1})
        .create_component("obj" + std::to_string(i), "Counter", true);
  }
  std::vector<std::int64_t> expected(object_count, 0);

  for (int op = 0; op < 25 * object_count; ++op) {
    const int which = static_cast<int>(rng.next_below(object_count));
    const std::string name = "obj" + std::to_string(which);
    auto& client = system->client(
        common::NodeId{static_cast<std::uint32_t>(rng.next_below(4) + 1)});
    if (rng.next_bool(0.5)) {
      client.move(name, common::NodeId{static_cast<std::uint32_t>(
                            rng.next_below(4) + 1)});
    } else {
      common::NodeId cloc = common::kNoNode;
      client.invoke<std::int64_t>(cloc, name, "increment");
      ++expected[which];
    }
  }

  for (int i = 0; i < object_count; ++i) {
    common::NodeId cloc = common::kNoNode;
    EXPECT_EQ(system->client(common::NodeId{1})
                  .invoke<std::int64_t>(cloc, "obj" + std::to_string(i),
                                        "get"),
              expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, MultiObject, ::testing::Values(1, 2, 4, 8));

// Serialization round trip through real migration preserves rich state for
// randomly generated notebooks.
class NotebookFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NotebookFuzz, RandomStateSurvivesMigrationChain) {
  auto system = make_logic_system(4, GetParam());
  auto& rng = system->simulation().rng();
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("nb", "Notebook");

  common::NodeId cloc = common::NodeId{1};
  const int entries = 1 + static_cast<int>(rng.next_below(30));
  std::vector<std::string> expected;
  for (int i = 0; i < entries; ++i) {
    std::string entry;
    const auto length = rng.next_below(64);
    for (std::uint64_t j = 0; j < length; ++j) {
      entry.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    expected.push_back(entry);
    c1.invoke<serial::Unit>(cloc, "nb", "append", entry);
  }

  // Drag it around the federation.
  for (int hop = 0; hop < 6; ++hop) {
    const common::NodeId to{static_cast<std::uint32_t>(rng.next_below(4) +
                                                       1)};
    c1.move("nb", to);
    cloc = to;
  }

  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "nb", "size"),
            static_cast<std::int64_t>(expected.size()));
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(c1.invoke<std::string>(cloc, "nb", "entry",
                                     static_cast<std::int64_t>(i)),
              expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NotebookFuzz, ::testing::Range(100, 108));

// The forwarding chain always collapses: after any migration history, one
// find from each node leaves every visited registry pointing directly at
// the live host.
class ChainCollapse : public ::testing::TestWithParam<int> {};

TEST_P(ChainCollapse, AllForwardsPointAtLiveHostAfterFind) {
  const int hops = GetParam();
  auto system = make_logic_system(6, 77 + hops);
  auto& rng = system->simulation().rng();
  system->client(common::NodeId{1}).create_component("obj", "Counter", true);

  common::NodeId at{1};
  for (int i = 0; i < hops; ++i) {
    common::NodeId to{static_cast<std::uint32_t>(rng.next_below(6) + 1)};
    system->client(at).move("obj", to);
    at = to;
  }

  for (auto node : system->nodes()) {
    EXPECT_EQ(system->client(node).find("obj"), at);
  }
  for (auto node : system->nodes()) {
    const auto fwd = system->server(node).registry().forward("obj");
    if (system->server(node).registry().has_local("obj")) {
      EXPECT_FALSE(fwd.has_value());
    } else if (fwd.has_value()) {
      EXPECT_EQ(*fwd, at) << "stale forward at node " << node.value();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(HopCounts, ChainCollapse,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace mage::rts
