// Unit tests for src/common: strong ids, RNG, stats, logging, errors.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"

namespace mage::common {
namespace {

// --- ids ---------------------------------------------------------------------

TEST(Ids, DefaultConstructedIsZero) {
  NodeId id;
  EXPECT_EQ(id.value(), 0u);
}

TEST(Ids, EqualityAndOrdering) {
  NodeId a{1}, b{2}, a2{1};
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, RequestId>);
  static_assert(!std::is_same_v<LockId, ActivityId>);
  SUCCEED();
}

TEST(Ids, HashWorksInUnorderedContainers) {
  std::set<NodeId> ordered{NodeId{3}, NodeId{1}, NodeId{2}};
  EXPECT_EQ(ordered.size(), 3u);
  std::hash<NodeId> h;
  EXPECT_EQ(h(NodeId{7}), h(NodeId{7}));
}

TEST(Ids, NoNodeSentinel) {
  EXPECT_TRUE(is_no_node(kNoNode));
  EXPECT_FALSE(is_no_node(NodeId{1}));
}

TEST(Ids, StreamOutput) {
  std::ostringstream os;
  os << NodeId{5} << " " << kNoNode;
  EXPECT_EQ(os.str(), "node(5) node(-)");
}

// --- time --------------------------------------------------------------------

TEST(Time, Factories) {
  EXPECT_EQ(usec(7), 7);
  EXPECT_EQ(msec(3), 3000);
  EXPECT_EQ(sec(2), 2'000'000);
  EXPECT_EQ(msec_f(1.5), 1500);
}

TEST(Time, ToMs) {
  EXPECT_DOUBLE_EQ(to_ms(msec(33)), 33.0);
  EXPECT_DOUBLE_EQ(to_ms(usec(500)), 0.5);
}

// --- rng ----------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);  // roughly uniform
}

TEST(Rng, NextBoolProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 4000; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 4000.0, 0.25, 0.04);
}

TEST(Rng, NextBoolDegenerateProbabilities) {
  Rng rng(23);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_FALSE(rng.next_bool(-1.0));
  EXPECT_TRUE(rng.next_bool(1.0));
  EXPECT_TRUE(rng.next_bool(2.0));
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ull);
  Rng rng(3);
  EXPECT_NE(rng(), rng());
}

// --- stats -----------------------------------------------------------------------

TEST(Stats, CountersAccumulate) {
  StatsRegistry stats;
  stats.add("x");
  stats.add("x", 4);
  stats.add("y", -2);
  EXPECT_EQ(stats.counter("x"), 5);
  EXPECT_EQ(stats.counter("y"), -2);
  EXPECT_EQ(stats.counter("missing"), 0);
}

TEST(Stats, SummaryBasics) {
  StatsRegistry stats;
  stats.record("lat", 10);
  stats.record("lat", 30);
  stats.record("lat", 20);
  const auto* s = stats.summary("lat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count(), 3u);
  EXPECT_EQ(s->total(), 60);
  EXPECT_EQ(s->min(), 10);
  EXPECT_EQ(s->max(), 30);
  EXPECT_DOUBLE_EQ(s->mean(), 20.0);
}

TEST(Stats, SummaryPercentiles) {
  DurationSummary s;
  for (int i = 1; i <= 100; ++i) s.record(i);
  EXPECT_EQ(s.percentile(0.0), 1);
  EXPECT_EQ(s.percentile(1.0), 100);
  EXPECT_NEAR(static_cast<double>(s.percentile(0.5)), 50.0, 1.0);
  EXPECT_NEAR(static_cast<double>(s.percentile(0.9)), 90.0, 1.0);
}

TEST(Stats, EmptySummaryIsSafe) {
  DurationSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0);
  EXPECT_EQ(s.max(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(0.5), 0);
}

TEST(Stats, MissingSummaryIsNull) {
  StatsRegistry stats;
  EXPECT_EQ(stats.summary("none"), nullptr);
}

TEST(Stats, Reset) {
  StatsRegistry stats;
  stats.add("x");
  stats.record("lat", 5);
  stats.reset();
  EXPECT_EQ(stats.counter("x"), 0);
  EXPECT_EQ(stats.summary("lat"), nullptr);
}

TEST(Stats, ToStringContainsKeys) {
  StatsRegistry stats;
  stats.add("net.messages", 3);
  stats.record("rmi.latency", 42);
  const auto text = stats.to_string();
  EXPECT_NE(text.find("net.messages = 3"), std::string::npos);
  EXPECT_NE(text.find("rmi.latency"), std::string::npos);
}

// --- log --------------------------------------------------------------------------

TEST(Log, SinkCapturesAtOrAboveLevel) {
  auto& logger = Logger::instance();
  const auto old_level = logger.level();
  std::vector<std::pair<LogLevel, std::string>> captured;
  logger.set_sink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  logger.set_level(LogLevel::Info);

  MAGE_DEBUG() << "hidden";
  MAGE_INFO() << "hello " << 42;
  MAGE_ERROR() << "boom";

  logger.set_sink(nullptr);
  logger.set_level(old_level);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].second, "hello 42");
  EXPECT_EQ(captured[1].first, LogLevel::Error);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::Trace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::Error), "ERROR");
}

// --- errors ------------------------------------------------------------------------

TEST(Errors, HierarchyCatchableAsMageError) {
  EXPECT_THROW(throw NotFoundError("obj", "gone"), MageError);
  EXPECT_THROW(throw CoercionError("obj", "bad"), MageError);
  EXPECT_THROW(throw TransportError("down"), MageError);
  EXPECT_THROW(throw SerializationError("trunc"), MageError);
  EXPECT_THROW(throw LockError("stuck"), MageError);
  EXPECT_THROW(throw RemoteInvocationError("far"), MageError);
}

TEST(Errors, NotFoundCarriesName) {
  try {
    throw NotFoundError("geoData", "no binding");
  } catch (const NotFoundError& e) {
    EXPECT_EQ(e.name(), "geoData");
    EXPECT_NE(std::string(e.what()).find("geoData"), std::string::npos);
  }
}

TEST(Errors, CoercionCarriesName) {
  try {
    throw CoercionError("geoData", "RPC mismatch");
  } catch (const CoercionError& e) {
    EXPECT_EQ(e.name(), "geoData");
    EXPECT_NE(std::string(e.what()).find("RPC mismatch"), std::string::npos);
  }
}

}  // namespace
}  // namespace mage::common
