// Round-trip tests for every wire-protocol struct, including boundary
// values.  The integration suites exercise these implicitly; these tests
// pin the encoding explicitly so a wire-format change is a visible diff.
#include <gtest/gtest.h>

#include "rts/protocol.hpp"

namespace mage::rts::proto {
namespace {

TEST(Protocol, LookupRequestRoundTrip) {
  LookupRequest v;
  v.name = "geoData";
  v.hops = 17;
  const auto decoded = LookupRequest::decode(v.encode());
  EXPECT_EQ(decoded.name, "geoData");
  EXPECT_EQ(decoded.hops, 17u);
}

TEST(Protocol, LookupReplyRoundTrip) {
  LookupReply v;
  v.status = Status::Ok;
  v.host = common::NodeId{9};
  const auto decoded = LookupReply::decode(v.encode());
  EXPECT_EQ(decoded.status, Status::Ok);
  EXPECT_EQ(decoded.host, common::NodeId{9});
}

TEST(Protocol, LookupReplyErrorRoundTrip) {
  LookupReply v;
  v.status = Status::Error;
  v.error = "cycle";
  const auto decoded = LookupReply::decode(v.encode());
  EXPECT_EQ(decoded.status, Status::Error);
  EXPECT_EQ(decoded.error, "cycle");
}

TEST(Protocol, ClassCheckRoundTrip) {
  EXPECT_EQ(ClassCheckRequest::decode(
                ClassCheckRequest{"GeoDataFilterImpl"}.encode())
                .class_name,
            "GeoDataFilterImpl");
  ClassCheckReply reply;
  reply.cached = true;
  EXPECT_TRUE(ClassCheckReply::decode(reply.encode()).cached);
}

TEST(Protocol, ClassImageCarriesItsCodeBytes) {
  ClassImage v;
  v.class_name = "Counter";
  v.code_size = 4096;
  const auto bytes = v.encode();
  // name(4+7) + size(4) + filler(4096)
  EXPECT_GE(bytes.size(), 4096u + 11u);
  const auto decoded = ClassImage::decode(bytes);
  EXPECT_EQ(decoded.class_name, "Counter");
  EXPECT_EQ(decoded.code_size, 4096u);
}

TEST(Protocol, ClassImageEmpty) {
  ClassImage v;
  v.class_name = "Tiny";
  v.code_size = 0;
  const auto decoded = ClassImage::decode(v.encode());
  EXPECT_EQ(decoded.code_size, 0u);
}

TEST(Protocol, LoadClassRoundTrip) {
  LoadClassRequest v;
  v.image.class_name = "X";
  v.image.code_size = 128;
  EXPECT_EQ(LoadClassRequest::decode(v.encode()).image.class_name, "X");
}

TEST(Protocol, InstantiateRoundTrip) {
  InstantiateRequest v;
  v.class_name = "Counter";
  v.object_name = "c1";
  v.is_public = true;
  v.class_source = common::NodeId{3};
  const auto decoded = InstantiateRequest::decode(v.encode());
  EXPECT_EQ(decoded.class_name, "Counter");
  EXPECT_EQ(decoded.object_name, "c1");
  EXPECT_TRUE(decoded.is_public);
  EXPECT_EQ(decoded.class_source, common::NodeId{3});
}

TEST(Protocol, SimpleReplyAllStatuses) {
  for (auto status : {Status::Ok, Status::Moved, Status::NotFound,
                      Status::Error}) {
    SimpleReply v;
    v.status = status;
    v.hint = common::NodeId{4};
    v.error = "e";
    const auto decoded = SimpleReply::decode(v.encode());
    EXPECT_EQ(decoded.status, status);
    EXPECT_EQ(decoded.hint, common::NodeId{4});
  }
}

TEST(Protocol, MoveRoundTrip) {
  MoveRequest v;
  v.name = "obj";
  v.to = common::NodeId{7};
  const auto decoded = MoveRequest::decode(v.encode());
  EXPECT_EQ(decoded.name, "obj");
  EXPECT_EQ(decoded.to, common::NodeId{7});
}

TEST(Protocol, TransferCarriesState) {
  TransferRequest v;
  v.name = "obj";
  v.class_name = "Counter";
  v.is_public = true;
  v.state = {1, 2, 3, 4, 5};
  const auto decoded = TransferRequest::decode(v.encode());
  EXPECT_EQ(decoded.state, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(decoded.is_public);
}

TEST(Protocol, TransferEmptyState) {
  TransferRequest v;
  v.name = "o";
  v.class_name = "C";
  EXPECT_TRUE(TransferRequest::decode(v.encode()).state.empty());
}

TEST(Protocol, InvokeRoundTrip) {
  InvokeRequest v;
  v.name = "obj";
  v.method = "filterData";
  v.args = {9, 8, 7};
  const auto decoded = InvokeRequest::decode(v.encode());
  EXPECT_EQ(decoded.method, "filterData");
  EXPECT_EQ(decoded.args, (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST(Protocol, InvokeReplyWithResult) {
  InvokeReply v;
  v.status = Status::Ok;
  v.result = {42};
  const auto decoded = InvokeReply::decode(v.encode());
  EXPECT_EQ(decoded.result, std::vector<std::uint8_t>{42});
}

TEST(Protocol, InvokeReplyMovedHint) {
  InvokeReply v;
  v.status = Status::Moved;
  v.hint = common::NodeId{11};
  const auto decoded = InvokeReply::decode(v.encode());
  EXPECT_EQ(decoded.status, Status::Moved);
  EXPECT_EQ(decoded.hint, common::NodeId{11});
}

TEST(Protocol, FetchResultRoundTrip) {
  EXPECT_EQ(FetchResultRequest::decode(FetchResultRequest{"obj"}.encode())
                .name,
            "obj");
}

TEST(Protocol, LockRoundTrip) {
  LockRequest v;
  v.name = "obj";
  v.target = common::NodeId{2};
  v.activity = 0xDEADBEEFull;
  const auto decoded = LockRequest::decode(v.encode());
  EXPECT_EQ(decoded.target, common::NodeId{2});
  EXPECT_EQ(decoded.activity, 0xDEADBEEFull);
}

TEST(Protocol, LockReplyRoundTrip) {
  LockReply v;
  v.status = Status::Ok;
  v.lock_id = 55;
  v.kind = LockKind::Move;
  const auto decoded = LockReply::decode(v.encode());
  EXPECT_EQ(decoded.lock_id, 55u);
  EXPECT_EQ(decoded.kind, LockKind::Move);
}

TEST(Protocol, UnlockRoundTrip) {
  UnlockRequest v;
  v.name = "obj";
  v.lock_id = 99;
  EXPECT_EQ(UnlockRequest::decode(v.encode()).lock_id, 99u);
}

TEST(Protocol, StaticGetPutRoundTrip) {
  StaticGetRequest g{"Counter", "total"};
  const auto dg = StaticGetRequest::decode(g.encode());
  EXPECT_EQ(dg.class_name, "Counter");
  EXPECT_EQ(dg.key, "total");

  StaticPutRequest p;
  p.class_name = "Counter";
  p.key = "total";
  p.value = {1, 2};
  const auto dp = StaticPutRequest::decode(p.encode());
  EXPECT_EQ(dp.value, (std::vector<std::uint8_t>{1, 2}));
}

TEST(Protocol, ExecRoundTrip) {
  ExecRequest v;
  v.class_name = "Integrator";
  v.object_name = "unit0";
  v.method = "integrate";
  v.args = {3, 1, 4};
  v.class_source = common::NodeId{1};
  const auto decoded = ExecRequest::decode(v.encode());
  EXPECT_EQ(decoded.class_name, "Integrator");
  EXPECT_EQ(decoded.object_name, "unit0");
  EXPECT_EQ(decoded.method, "integrate");
  EXPECT_EQ(decoded.args, (std::vector<std::uint8_t>{3, 1, 4}));
}

TEST(Protocol, DiscoverRoundTrip) {
  EXPECT_EQ(DiscoverRequest::decode(DiscoverRequest{"printer"}.encode())
                .kind,
            "printer");
  DiscoverReply reply;
  reply.offers = true;
  reply.capacity = 33.5;
  const auto decoded = DiscoverReply::decode(reply.encode());
  EXPECT_TRUE(decoded.offers);
  EXPECT_DOUBLE_EQ(decoded.capacity, 33.5);
}

TEST(Protocol, LoadReplyRoundTrip) {
  LoadReply v;
  v.load = 101.25;
  EXPECT_DOUBLE_EQ(LoadReply::decode(v.encode()).load, 101.25);
}

TEST(Protocol, StatusNames) {
  EXPECT_STREQ(status_name(Status::Ok), "Ok");
  EXPECT_STREQ(status_name(Status::Moved), "Moved");
  EXPECT_STREQ(status_name(Status::NotFound), "NotFound");
  EXPECT_STREQ(status_name(Status::Error), "Error");
}

TEST(Protocol, NodeCodecSentinel) {
  serial::Writer w;
  put_node(w, common::kNoNode);
  serial::ChainReader r(w.take());
  EXPECT_TRUE(common::is_no_node(get_node(r)));
}

TEST(Protocol, NamesWithUnicodeAndNulls) {
  LookupRequest v;
  v.name = std::string("g\0o\xC3\xA9", 5);
  EXPECT_EQ(LookupRequest::decode(v.encode()).name, v.name);
}

}  // namespace
}  // namespace mage::rts::proto
