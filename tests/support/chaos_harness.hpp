// Seed-replayable chaos harness: random fault schedules over the storm
// mesh, replayed bit-identically at any worker count.
//
// One 64-bit seed determines EVERYTHING about a chaos run: the fault
// schedule (via its own Rng stream), the per-NODE loss RNG streams (each
// seeded from the master seed and the node's id, so every IID loss
// decision is a function of the node's own send sequence — surviving any
// node:shard remapping), and therefore every drop, retransmission,
// duplicate, and re-delivery.  `run_chaos_storm(seed, threads)` runs the
// same all-to-all echo storm under the same generated schedule at any
// worker count and returns per-node execution digests plus the full
// counter picture, so tests can assert:
//
//   (a) determinism  — digests (execution order + shard-local timestamps)
//       identical at 1, 2, and 8 workers;
//   (b) at-most-once — every (caller, seq) invoke executed exactly once
//       despite retransmissions (execution counters, not just reply
//       dedup), with zero eviction-caused re-executions under an
//       adequately sized reply cache;
//   (c) per-link FIFO — the network's wire-FIFO self-check stays at zero
//       violations across partition cuts and heals;
//   (d) liveness     — zero failed invokes: once connectivity is restored
//       the retransmission machinery delivers everything.
//
// `threads == 0` runs the identical workload + schedule on the classic
// single-queue driver engine (faults applied at exact times rather than
// window boundaries): semantic properties (b)-(d) must hold there too,
// which is how single-threaded and sharded fault behavior are asserted
// equivalent.  (Digests are engine-local: the driver engine draws loss
// from one shared RNG stream, the sharded engine from one stream per
// node, so drop patterns — and thus timestamps — legitimately differ
// between engines, never between worker counts or node:shard mappings of
// the sharded engine.)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/cost_model.hpp"
#include "net/fault_schedule.hpp"
#include "net/network.hpp"
#include "rmi/transport.hpp"
#include "serial/writer.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"

namespace mage::testing {

struct ChaosParams {
  int nodes = 8;
  int calls_per_link = 30;
  int window = 4;  // outstanding calls per link
  std::size_t reply_cache_capacity = rmi::Transport::kReplyCacheCapacity;
  // Faults land inside [t0, t0 + span]; every partition heals and every
  // crash restarts by the end of the span.  The storm keeps retrying far
  // past it (retry budget = retry_timeout * max_attempts >> span), so no
  // invoke is ever lost to the schedule.
  common::SimTime fault_t0_us = 1'000;
  common::SimDuration fault_span_us = 6'000;
  rmi::CallOptions call_options{/*retry_timeout_us=*/3'000,
                                /*max_attempts=*/64};
  // Per-link invoke coalescing (rmi::BatchOptions) on every transport.
  // Exactly-once, FIFO, and digest determinism must all hold unchanged —
  // a dropped batch frame is retried per-request and re-executes as a
  // unit with zero duplicate side effects.
  bool batching = false;
  common::SimDuration flush_quantum_us = 250;
  // Fire a one-way "chaos.note" alongside every echo call.  One-ways have
  // no retransmission, so under loss their per-(caller, seq) execution
  // count is 0 or 1 — never 2 (at-most-once by construction).
  bool oneway_notes = false;
};

inline net::CostModel chaos_model() {
  net::CostModel m = net::CostModel::zero();
  m.propagation_us = 200;
  m.per_message_cpu_us = 20;
  m.connection_setup_us = 100;
  m.local_invoke_us = 1;
  return m;
}

// Generates a random schedule from `seed`, guaranteed to contain at least
// one loss burst, one partition/heal pair, and one node crash/restart —
// plus a few extra random events — all inside the params' fault window.
// Pure function of (seed, params): every worker-count replay of a seed
// sees the same program.
inline net::FaultSchedule random_fault_schedule(std::uint64_t seed,
                                                const ChaosParams& params) {
  common::Rng rng(seed ^ 0xC4A05ull);
  const auto n = static_cast<std::uint64_t>(params.nodes);
  const common::SimTime t0 = params.fault_t0_us;
  const common::SimDuration span = params.fault_span_us;
  auto time_in = [&](double lo_frac, double hi_frac) {
    const auto lo = static_cast<std::int64_t>(lo_frac * span);
    const auto hi = static_cast<std::int64_t>(hi_frac * span);
    return t0 + rng.next_range(lo, hi);
  };
  auto node = [&] {
    return common::NodeId{static_cast<std::uint32_t>(rng.next_below(n) + 1)};
  };

  net::FaultSchedule schedule;
  // Mandatory loss burst: 5-35% IID loss for 1/6..1/3 of the span.
  schedule.loss_burst(time_in(0.0, 0.4),
                      0.05 + 0.3 * rng.next_double(),
                      span / 6 + rng.next_below(span / 6));
  // Mandatory partition/heal pair on a random link.
  {
    const common::NodeId a = node();
    common::NodeId b = node();
    while (b == a) b = node();
    schedule.partition_for(time_in(0.0, 0.4), a, b,
                           span / 6 + rng.next_below(span / 4));
  }
  // Mandatory crash/restart of a random node.
  schedule.crash_for(time_in(0.1, 0.5), node(),
                     span / 8 + rng.next_below(span / 4));
  // 0-2 extra partitions, 0-1 extra bursts, for schedule diversity.
  const std::uint64_t extra_partitions = rng.next_below(3);
  for (std::uint64_t i = 0; i < extra_partitions; ++i) {
    const common::NodeId a = node();
    common::NodeId b = node();
    while (b == a) b = node();
    schedule.partition_for(time_in(0.0, 0.6), a, b,
                           span / 8 + rng.next_below(span / 4));
  }
  if (rng.next_below(2) == 1) {
    schedule.loss_burst(time_in(0.3, 0.6), 0.05 + 0.2 * rng.next_double(),
                        span / 8 + rng.next_below(span / 8));
  }
  return schedule;
}

struct ChaosRun {
  bool completed = false;
  // Per receiving node (index 0 unused): FNV fold of every execution's
  // (caller, seq, shard-local time) in execution order.
  std::vector<std::uint64_t> node_digests;
  // Per receiving node, per (caller index * calls_per_link + seq):
  // execution count.  At-most-once + liveness <=> all exactly 1.
  std::vector<std::vector<std::int32_t>> exec_counts;
  std::int64_t failed_calls = 0;
  std::int64_t retransmissions = 0;
  std::int64_t duplicates_suppressed = 0;
  std::int64_t reply_cache_evictions = 0;
  std::int64_t evicted_reexecutions = 0;
  std::int64_t faults_applied = 0;
  std::int64_t pending_fault_events = 0;
  std::int64_t messages_dropped = 0;
  std::int64_t messages_dropped_by_schedule = 0;
  std::int64_t fifo_violations = 0;
  std::int64_t windows = 0;  // sharded engine only
  std::int64_t messages_sent = 0;
  std::int64_t batches_sent = 0;
  std::int64_t batched_invokes = 0;
  std::int64_t batch_singletons = 0;
  std::int64_t oneway_calls = 0;
  std::int64_t oneway_executions = 0;
  // Per receiving node, per (caller index * calls_per_link + seq): one-way
  // note execution count (empty unless params.oneway_notes).
  std::vector<std::vector<std::int32_t>> note_exec_counts;

  // One-ways never retransmit, so a count of 2+ means a duplicate
  // execution — at-most-once broken.  0 is legal (lost to the schedule).
  [[nodiscard]] bool every_note_at_most_once() const {
    for (const auto& per_node : note_exec_counts) {
      for (std::int32_t c : per_node) {
        if (c > 1) return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool every_invoke_exactly_once() const {
    const std::size_t nodes = exec_counts.size() - 1;
    for (std::size_t node = 1; node <= nodes; ++node) {
      const auto& per_node = exec_counts[node];
      const std::size_t calls_per_link = per_node.size() / nodes;
      for (std::size_t k = 0; k < per_node.size(); ++k) {
        const std::size_t caller = k / calls_per_link + 1;
        if (caller == node) continue;  // no self-links in the mesh
        if (per_node[k] != 1) return false;
      }
    }
    return true;
  }
};

namespace chaos_detail {

inline std::uint64_t fold(std::uint64_t digest, std::uint64_t v) {
  return (digest ^ v) * 0x100000001B3ull;
}

}  // namespace chaos_detail

// Runs the all-to-all echo storm under the schedule generated from `seed`.
// threads >= 1: sharded engine with that many workers; threads == 0: the
// single-queue driver engine (exact-time fault application).
inline ChaosRun run_chaos_storm(std::uint64_t seed, int threads,
                                const ChaosParams& params = {}) {
  const int n = params.nodes;
  const net::CostModel model = chaos_model();

  std::unique_ptr<sim::ShardedSim> ssim;
  std::unique_ptr<sim::Simulation> dsim;
  std::unique_ptr<net::Network> net_ptr;
  if (threads >= 1) {
    ssim = std::make_unique<sim::ShardedSim>(
        static_cast<std::size_t>(n), seed,
        net::Network::min_link_latency(model));
    net_ptr = std::make_unique<net::Network>(*ssim, model);
  } else {
    dsim = std::make_unique<sim::Simulation>(seed);
    net_ptr = std::make_unique<net::Network>(*dsim, model);
  }
  net::Network& net = *net_ptr;

  std::vector<common::NodeId> ids;
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  for (int i = 0; i < n; ++i) {
    ids.push_back(net.add_node("n" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(
        net, ids[i], params.reply_cache_capacity));
    if (params.batching) {
      rmi::BatchOptions batch;
      batch.enabled = true;
      batch.flush_quantum_us = params.flush_quantum_us;
      transports.back()->set_batching(batch);
    }
  }

  ChaosRun run;
  run.node_digests.assign(static_cast<std::size_t>(n) + 1,
                          0xcbf29ce484222325ull);
  run.exec_counts.assign(
      static_cast<std::size_t>(n) + 1,
      std::vector<std::int32_t>(
          static_cast<std::size_t>(n) * params.calls_per_link, 0));

  // Echo service: counts the execution (not the reply!), folds it into the
  // receiver's digest with the shard-local clock, echoes the body back.
  const common::VerbId echo = common::intern_verb("chaos.echo");
  for (int i = 0; i < n; ++i) {
    auto* digest = &run.node_digests[ids[i].value()];
    auto* counts = &run.exec_counts[ids[i].value()];
    auto& sim = net.node_sim(ids[i]);
    const int calls_per_link = params.calls_per_link;
    transports[i]->register_service(
        echo, [digest, counts, &sim, calls_per_link](
                  common::NodeId caller, const serial::BufferChain& body,
                  rmi::Replier replier) {
          serial::ChainReader r(body);
          const std::uint64_t seq = r.read_u64();
          ++(*counts)[(caller.value() - 1) * calls_per_link + seq];
          using chaos_detail::fold;
          *digest = fold(fold(fold(*digest, caller.value()), seq),
                         static_cast<std::uint64_t>(sim.now()));
          replier.ok(body);
        });
  }

  // One-way note service: a pure side effect (no Replier to arm).  Counts
  // fold into the same per-node digests, so a duplicate or misordered
  // one-way execution breaks worker-count determinism too.
  const common::VerbId note = common::intern_verb("chaos.note");
  if (params.oneway_notes) {
    run.note_exec_counts.assign(
        static_cast<std::size_t>(n) + 1,
        std::vector<std::int32_t>(
            static_cast<std::size_t>(n) * params.calls_per_link, 0));
    for (int i = 0; i < n; ++i) {
      auto* digest = &run.node_digests[ids[i].value()];
      auto* counts = &run.note_exec_counts[ids[i].value()];
      auto& sim = net.node_sim(ids[i]);
      const int calls_per_link = params.calls_per_link;
      transports[i]->register_service(
          note, [digest, counts, &sim, calls_per_link](
                    common::NodeId caller, const serial::BufferChain& body,
                    rmi::Replier replier) {
            if (replier.armed()) {
              // The harness only ever sends notes one-way; an armed
              // Replier here would mean the transport misrouted.
              replier.error("chaos.note must arrive one-way");
              return;
            }
            serial::ChainReader r(body);
            const std::uint64_t seq = r.read_u64();
            ++(*counts)[(caller.value() - 1) * calls_per_link + seq];
            using chaos_detail::fold;
            *digest =
                fold(fold(fold(*digest, caller.value() ^ 0xFFFFFFFFull), seq),
                     static_cast<std::uint64_t>(sim.now()));
          });
    }
  }

  // One windowed pipeline per directed link; completions (ok or failed)
  // are counted per SOURCE node so each slot has exactly one writing
  // shard.
  struct Link {
    rmi::Transport* transport;
    common::NodeId dst;
    std::int64_t next_seq = 0;
    std::int64_t* completed = nullptr;
    std::int64_t* failed = nullptr;
  };
  std::vector<std::int64_t> completed(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::int64_t> failed(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Link> links;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) {
        links.push_back(Link{transports[i].get(), ids[j], 0,
                             &completed[ids[i].value()],
                             &failed[ids[i].value()]});
      }
    }
  }
  std::function<void(Link&)> launch = [&](Link& link) {
    if (link.next_seq >= params.calls_per_link) return;
    const auto seq = static_cast<std::uint64_t>(link.next_seq++);
    serial::Writer w(8);
    w.write_u64(seq);
    serial::Buffer body = w.take();
    if (params.oneway_notes) {
      link.transport->call_oneway(link.dst, note, body);
    }
    link.transport->call(
        link.dst, echo, std::move(body),
        [&launch, &link](rmi::CallResult r) {
          if (!r.ok) ++*link.failed;
          ++*link.completed;
          launch(link);
        },
        params.call_options);
  };

  // Install the chaos program + the wire-FIFO self-check.
  net::FaultSchedule schedule = random_fault_schedule(seed, params);
  net.set_fifo_checks(true);
  net.set_fault_schedule(std::move(schedule));

  // Horizon ticks: no-op events on node 0's context that keep virtual time
  // advancing past the last schedule entry even if every call completes
  // early, so every entry is guaranteed to apply during the run.
  const common::SimTime horizon =
      params.fault_t0_us + params.fault_span_us * 2;
  for (common::SimTime t = 500; t <= horizon; t += 500) {
    net.node_sim(ids[0]).schedule_at(t, [] {}, sim::Wake::No);
  }

  for (auto& link : links) {
    for (int w = 0; w < params.window; ++w) launch(link);
  }

  const std::int64_t total =
      static_cast<std::int64_t>(n) * (n - 1) * params.calls_per_link;
  auto done = [&] {
    std::int64_t sum = 0;
    for (std::int64_t c : completed) sum += c;
    return sum == total && net.pending_fault_events() == 0;
  };
  // Generous virtual-time deadline: a liveness bug fails the run instead
  // of hanging the test.
  const common::SimTime deadline = 60'000'000;  // 60 simulated seconds
  if (threads >= 1) {
    run.completed = ssim->run_until(done, threads, deadline);
    run.windows = ssim->windows();
    run.retransmissions = ssim->counter("rmi.retransmissions");
    run.duplicates_suppressed = ssim->counter("rmi.duplicates_suppressed");
    run.reply_cache_evictions = ssim->counter("rmi.reply_cache_evictions");
    run.evicted_reexecutions = ssim->counter("rmi.evicted_reexecutions");
    run.faults_applied = ssim->counter("net.faults_applied");
    run.messages_dropped = ssim->counter("net.messages_dropped");
    run.messages_dropped_by_schedule =
        ssim->counter("net.messages_dropped_by_schedule");
    run.fifo_violations = ssim->counter("net.fifo_violations");
    run.messages_sent = ssim->counter("net.messages_sent");
    run.batches_sent = ssim->counter("rmi.batches_sent");
    run.batched_invokes = ssim->counter("rmi.batched_invokes");
    run.batch_singletons = ssim->counter("rmi.batch_singletons");
    run.oneway_calls = ssim->counter("rmi.oneway_calls");
    run.oneway_executions = ssim->counter("rmi.oneway_executions");
  } else {
    run.completed = dsim->run_until(done, deadline);
    auto& stats = dsim->stats();
    run.retransmissions = stats.counter("rmi.retransmissions");
    run.duplicates_suppressed = stats.counter("rmi.duplicates_suppressed");
    run.reply_cache_evictions = stats.counter("rmi.reply_cache_evictions");
    run.evicted_reexecutions = stats.counter("rmi.evicted_reexecutions");
    run.faults_applied = stats.counter("net.faults_applied");
    run.messages_dropped = stats.counter("net.messages_dropped");
    run.messages_dropped_by_schedule =
        stats.counter("net.messages_dropped_by_schedule");
    run.fifo_violations = stats.counter("net.fifo_violations");
    run.messages_sent = stats.counter("net.messages_sent");
    run.batches_sent = stats.counter("rmi.batches_sent");
    run.batched_invokes = stats.counter("rmi.batched_invokes");
    run.batch_singletons = stats.counter("rmi.batch_singletons");
    run.oneway_calls = stats.counter("rmi.oneway_calls");
    run.oneway_executions = stats.counter("rmi.oneway_executions");
  }
  for (std::int64_t f : failed) run.failed_calls += f;
  run.pending_fault_events =
      static_cast<std::int64_t>(net.pending_fault_events());
  return run;
}

}  // namespace mage::testing
