// Shared test fixtures: mobile object classes and federation builders used
// across the unit, integration and property test suites.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "core/mage.hpp"

namespace mage::testing {

// The paper's Table 3 test object: one integer attribute plus increment.
class Counter : public rts::MageObject {
 public:
  std::string class_name() const override { return "Counter"; }
  void serialize(serial::Writer& w) const override { w.write_i64(value_); }
  void deserialize(serial::Reader& r) override { value_ = r.read_i64(); }

  std::int64_t increment() { return ++value_; }
  std::int64_t add(std::int64_t delta) { return value_ += delta; }
  std::int64_t get() const { return value_; }
  void set(std::int64_t v) { value_ = v; }

 private:
  std::int64_t value_ = 0;
};

// A larger object exercising non-trivial marshalling: strings and vectors.
class Notebook : public rts::MageObject {
 public:
  std::string class_name() const override { return "Notebook"; }
  void serialize(serial::Writer& w) const override {
    w.write_string(title_);
    w.write_u32(static_cast<std::uint32_t>(entries_.size()));
    for (const auto& e : entries_) w.write_string(e);
  }
  void deserialize(serial::Reader& r) override {
    title_ = r.read_string();
    entries_.resize(r.read_u32());
    for (auto& e : entries_) e = r.read_string();
  }

  void set_title(std::string title) { title_ = std::move(title); }
  std::string title() const { return title_; }
  void append(std::string entry) { entries_.push_back(std::move(entry)); }
  std::int64_t size() const {
    return static_cast<std::int64_t>(entries_.size());
  }
  std::string entry(std::int64_t index) const {
    return entries_.at(static_cast<std::size_t>(index));
  }

 private:
  std::string title_;
  std::vector<std::string> entries_;
};

// An object whose method throws, for error-propagation tests.
class Grumpy : public rts::MageObject {
 public:
  std::string class_name() const override { return "Grumpy"; }
  void serialize(serial::Writer&) const override {}
  void deserialize(serial::Reader&) override {}

  std::int64_t refuse() {
    throw common::RemoteInvocationError("grumpy object refuses");
  }
};

// Registers the standard test classes in a system's world.
inline void register_test_classes(rts::MageSystem& system) {
  rts::ClassBuilder<Counter>(system.world(), "Counter")
      .method("increment", &Counter::increment)
      .method("add", &Counter::add)
      .method("get", &Counter::get)
      .method("set", &Counter::set);
  rts::ClassBuilder<Notebook>(system.world(), "Notebook", /*code_size=*/4096)
      .method("set_title", &Notebook::set_title)
      .method("title", &Notebook::title)
      .method("append", &Notebook::append)
      .method("size", &Notebook::size)
      .method("entry", &Notebook::entry);
  rts::ClassBuilder<Grumpy>(system.world(), "Grumpy")
      .method("refuse", &Grumpy::refuse);
}

// Builds an N-node federation with the zero-cost model (logic tests) and
// all test classes registered and pre-warmed.
inline std::unique_ptr<rts::MageSystem> make_logic_system(
    int nodes, std::uint64_t seed = 42) {
  auto system =
      std::make_unique<rts::MageSystem>(net::CostModel::zero(), seed);
  for (int i = 0; i < nodes; ++i) {
    system->add_node("n" + std::to_string(i + 1));
  }
  register_test_classes(*system);
  system->warm_all();
  return system;
}

// Builds an N-node federation with the paper-calibrated cost model.
inline std::unique_ptr<rts::MageSystem> make_classic_system(
    int nodes, std::uint64_t seed = 42) {
  auto system = std::make_unique<rts::MageSystem>(
      net::CostModel::jdk122_classic(), seed);
  for (int i = 0; i < nodes; ++i) {
    system->add_node("n" + std::to_string(i + 1));
  }
  register_test_classes(*system);
  return system;
}

}  // namespace mage::testing
