// Target-selection policy tests (the paper's selectNewHost building blocks).
#include <gtest/gtest.h>

#include "support/test_objects.hpp"

namespace mage::core {
namespace {

using testing::make_logic_system;

struct PolicyFixture : ::testing::Test {
  std::unique_ptr<rts::MageSystem> system = make_logic_system(4);
  common::NodeId n1{1}, n2{2}, n3{3}, n4{4};
  std::vector<common::NodeId> all{n1, n2, n3, n4};

  rts::MageClient& client() { return system->client(n1); }
};

TEST_F(PolicyFixture, LeastLoadedPicksMinimum) {
  system->network().set_load(n1, 10);
  system->network().set_load(n2, 5);
  system->network().set_load(n3, 20);
  system->network().set_load(n4, 7);
  LeastLoadedPolicy policy;
  EXPECT_EQ(policy.select(client(), all), n2);
}

TEST_F(PolicyFixture, LeastLoadedBreaksTiesByNodeId) {
  system->network().set_load(n2, 3);
  system->network().set_load(n3, 3);
  system->network().set_load(n1, 9);
  system->network().set_load(n4, 9);
  LeastLoadedPolicy policy;
  EXPECT_EQ(policy.select(client(), {n3, n2, n4}), n2);
}

TEST_F(PolicyFixture, LeastLoadedThrowsOnEmpty) {
  LeastLoadedPolicy policy;
  EXPECT_THROW((void)policy.select(client(), {}), common::MageError);
}

TEST_F(PolicyFixture, LeastLoadedQueriesRemoteNodes) {
  // Each remote load query is a get_load round trip.
  const auto calls = system->stats().counter("rmi.calls.mage.get_load");
  LeastLoadedPolicy policy;
  (void)policy.select(client(), all);
  EXPECT_EQ(system->stats().counter("rmi.calls.mage.get_load") - calls, 3);
}

TEST_F(PolicyFixture, RoundRobinCycles) {
  RoundRobinPolicy policy;
  EXPECT_EQ(policy.select(client(), all), n1);
  EXPECT_EQ(policy.select(client(), all), n2);
  EXPECT_EQ(policy.select(client(), all), n3);
  EXPECT_EQ(policy.select(client(), all), n4);
  EXPECT_EQ(policy.select(client(), all), n1);
}

TEST_F(PolicyFixture, RandomIsDeterministicPerSeedAndInRange) {
  RandomPolicy policy;
  std::set<common::NodeId> seen;
  for (int i = 0; i < 100; ++i) {
    const auto pick = policy.select(client(), all);
    EXPECT_GE(pick.value(), 1u);
    EXPECT_LE(pick.value(), 4u);
    seen.insert(pick);
  }
  EXPECT_GE(seen.size(), 3u);  // covers most of the range
}

TEST_F(PolicyFixture, ThresholdStaysUnderLoad) {
  system->network().set_load(n1, 50);
  LoadThresholdPolicy policy(/*threshold=*/100, /*current=*/n1);
  EXPECT_EQ(policy.select(client(), all), n1);
}

TEST_F(PolicyFixture, ThresholdOffloadsWhenHot) {
  // The paper's §3.1 policy: "if ( cloc.getLoad() > 100 ) target =
  // selectNewHost()".
  system->network().set_load(n1, 150);
  system->network().set_load(n2, 80);
  system->network().set_load(n3, 1);
  system->network().set_load(n4, 90);
  LoadThresholdPolicy policy(/*threshold=*/100, /*current=*/n1);
  EXPECT_EQ(policy.select(client(), {n2, n3, n4}), n3);
}

TEST_F(PolicyFixture, ThresholdTracksCurrentHost) {
  system->network().set_load(n2, 500);
  system->network().set_load(n1, 0);
  LoadThresholdPolicy policy(100, n2);
  EXPECT_EQ(policy.select(client(), {n1, n3}), n1);
  policy.set_current(n1);
  EXPECT_EQ(policy.select(client(), {n2, n3}), n1);
}

// A user-defined load-balancing attribute built from a policy — the §3.1
// example, end to end.
class LoadBalancedMa : public MobilityAttribute {
 public:
  LoadBalancedMa(rts::MageClient& client, common::ComponentName name,
                 std::vector<common::NodeId> candidates, double threshold)
      : MobilityAttribute(client, std::move(name)),
        candidates_(std::move(candidates)),
        threshold_(threshold) {}

  [[nodiscard]] Model model() const override { return Model::Grev; }

 protected:
  RemoteHandle do_bind() override {
    const auto at = resolve();
    if (client_.load_of(at) <= threshold_) return handle_at(at);
    LeastLoadedPolicy fallback;
    const auto target = fallback.select(client_, candidates_);
    if (target == at) return handle_at(at);
    client_.move(name_, target, at);
    cloc_ = target;
    return handle_at(target);
  }

 private:
  std::vector<common::NodeId> candidates_;
  double threshold_;
};

TEST_F(PolicyFixture, UserDefinedLoadBalancerMigratesOffHotHost) {
  system->client(n2).create_component("service", "Counter", true);
  system->network().set_load(n2, 150);
  system->network().set_load(n3, 2);
  system->network().set_load(n4, 60);
  LoadBalancedMa attr(client(), "service", {n2, n3, n4}, 100.0);
  auto h = attr.bind();
  EXPECT_EQ(h.location(), n3);
  EXPECT_EQ(h.invoke<std::int64_t>("increment"), 1);
}

TEST_F(PolicyFixture, UserDefinedLoadBalancerStaysOnCoolHost) {
  system->client(n2).create_component("service", "Counter", true);
  system->network().set_load(n2, 10);
  LoadBalancedMa attr(client(), "service", {n2, n3, n4}, 100.0);
  auto h = attr.bind();
  EXPECT_EQ(h.location(), n2);
  EXPECT_EQ(system->stats().counter("rts.migrations"), 0);
}

}  // namespace
}  // namespace mage::core
