// Integration tests for the MAGE runtime: registry lookup with forwarding
// chains and path collapsing, object migration, class shipping, one-way
// invocation, engine warm-up, in-transit redirection.
#include <gtest/gtest.h>

#include "support/test_objects.hpp"

namespace mage::rts {
namespace {

using testing::Counter;
using testing::make_classic_system;
using testing::make_logic_system;

TEST(System, BootAndDescribe) {
  auto system = make_logic_system(3);
  EXPECT_EQ(system->nodes().size(), 3u);
  const auto text = system->describe();
  EXPECT_NE(text.find("3 namespaces"), std::string::npos);
}

TEST(System, CreateComponentBindsLocallyAndAnnounces) {
  auto system = make_logic_system(2);
  auto& client = system->client(common::NodeId{1});
  client.create_component("counter", "Counter");
  EXPECT_TRUE(client.has_local("counter"));
  EXPECT_TRUE(system->directory().contains("counter"));
  EXPECT_EQ(system->directory().info("counter").home, common::NodeId{1});
  EXPECT_FALSE(client.is_shared("counter"));
}

TEST(System, PublicComponentIsShared) {
  auto system = make_logic_system(2);
  auto& client = system->client(common::NodeId{1});
  client.create_component("shared", "Counter", /*is_public=*/true);
  EXPECT_TRUE(client.is_shared("shared"));
}

TEST(System, FindLocalObject) {
  auto system = make_logic_system(2);
  auto& client = system->client(common::NodeId{1});
  client.create_component("counter", "Counter");
  EXPECT_EQ(client.find("counter"), common::NodeId{1});
}

TEST(System, FindUnknownThrows) {
  auto system = make_logic_system(2);
  auto& client = system->client(common::NodeId{1});
  EXPECT_THROW((void)client.find("ghost"), common::NotFoundError);
}

TEST(System, MoveAndFindFromAnotherNode) {
  auto system = make_logic_system(3);
  const common::NodeId n1{1}, n2{2}, n3{3};
  auto& c1 = system->client(n1);
  c1.create_component("counter", "Counter");
  EXPECT_EQ(c1.move("counter", n2), n2);
  EXPECT_FALSE(c1.has_local("counter"));
  EXPECT_TRUE(system->server(n2).registry().has_local("counter"));

  // A third party that has never heard of the object finds it via the
  // directory home + forwarding chain.
  auto& c3 = system->client(n3);
  EXPECT_EQ(c3.find("counter"), n2);
}

TEST(System, LocalInvocationFastPath) {
  auto system = make_logic_system(1);
  auto& client = system->client(common::NodeId{1});
  client.create_component("counter", "Counter");
  common::NodeId cloc = common::NodeId{1};
  EXPECT_EQ(client.invoke<std::int64_t>(cloc, "counter", "increment"), 1);
  EXPECT_EQ(system->stats().counter("rts.local_invocations"), 1);
  EXPECT_EQ(system->stats().counter("rts.invocations"), 0);
}

TEST(System, RemoteInvocationCarriesArgsAndResults) {
  auto system = make_logic_system(2);
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("counter", "Counter");
  c1.move("counter", common::NodeId{2});
  common::NodeId cloc = common::NodeId{2};
  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "add",
                                    std::int64_t{40}),
            40);
  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "add", std::int64_t{2}),
            42);
}

TEST(System, InvocationChasesMovedObject) {
  auto system = make_logic_system(3);
  const common::NodeId n2{2}, n3{3};
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("counter", "Counter");
  c1.move("counter", n2);
  // Another client moves it again; our stale cloc still converges.
  auto& c3 = system->client(n3);
  c3.move("counter", n3);
  common::NodeId stale = n2;
  EXPECT_EQ(c1.invoke<std::int64_t>(stale, "counter", "increment"), 1);
  EXPECT_EQ(stale, n3);  // the chase updated the caller's view
}

TEST(System, StatePersistsAcrossMigration) {
  auto system = make_logic_system(3);
  auto& client = system->client(common::NodeId{1});
  client.create_component("counter", "Counter");
  auto& counter = dynamic_cast<Counter&>(client.local_object("counter"));
  counter.set(100);
  client.move("counter", common::NodeId{2});
  common::NodeId cloc = common::NodeId{2};
  EXPECT_EQ(client.invoke<std::int64_t>(cloc, "counter", "get"), 100);
  client.move("counter", common::NodeId{3}, cloc);
  cloc = common::NodeId{3};
  EXPECT_EQ(client.invoke<std::int64_t>(cloc, "counter", "increment"), 101);
}

TEST(System, ForwardingChainCollapsesOnLookup) {
  auto system = make_logic_system(4);
  const common::NodeId n1{1}, n2{2}, n3{3}, n4{4};
  auto& c1 = system->client(n1);
  // Shared: multiple activities move it, so finds must walk the chain.
  c1.create_component("counter", "Counter", /*is_public=*/true);
  // Build a chain 1 -> 2 -> 3 -> 4 by moving via different clients so no
  // single registry learns the final location.
  c1.move("counter", n2);
  system->client(n2).move("counter", n3);
  system->client(n3).move("counter", n4);

  // Node 1's forward still points at node 2 (it only saw the first move).
  ASSERT_TRUE(system->server(n1).registry().forward("counter").has_value());
  EXPECT_EQ(*system->server(n1).registry().forward("counter"), n2);

  // A lookup from node 1 walks 1->2->3->4 and collapses every hop.
  EXPECT_EQ(c1.find("counter"), n4);
  EXPECT_EQ(*system->server(n1).registry().forward("counter"), n4);
  EXPECT_EQ(*system->server(n2).registry().forward("counter"), n4);
  EXPECT_EQ(*system->server(n3).registry().forward("counter"), n4);

  // A second lookup takes one hop instead of three.
  const auto hops_before = system->stats().counter("rts.lookup_hops");
  (void)system->client(n2).find("counter");
  const auto hops_after = system->stats().counter("rts.lookup_hops");
  EXPECT_LE(hops_after - hops_before, 1);
}

TEST(System, ClassShipsOnDemandDuringTransfer) {
  auto system = make_logic_system(2);
  const common::NodeId n1{1}, n2{2};
  auto& c1 = system->client(n1);
  c1.create_component("counter", "Counter");
  EXPECT_FALSE(system->server(n2).class_cache().has("Counter"));
  c1.move("counter", n2);
  EXPECT_TRUE(system->server(n2).class_cache().has("Counter"));
  EXPECT_GE(system->stats().counter("rts.class_loads"), 1);
}

TEST(System, SecondTransferSkipsClassFetch) {
  auto system = make_logic_system(2);
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("counter", "Counter");
  c1.move("counter", common::NodeId{2});
  const auto fetches = system->stats().counter("rts.class_fetches");
  c1.move("counter", common::NodeId{1});
  c1.move("counter", common::NodeId{2});
  EXPECT_EQ(system->stats().counter("rts.class_fetches"), fetches);
}

TEST(System, CacheDisabledRefetchesEveryTime) {
  auto system = make_logic_system(2);
  system->server(common::NodeId{2}).class_cache().set_caching_enabled(false);
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("counter", "Counter");
  c1.move("counter", common::NodeId{2});
  c1.move("counter", common::NodeId{1});
  const auto fetches = system->stats().counter("rts.class_fetches");
  c1.move("counter", common::NodeId{2});
  EXPECT_GT(system->stats().counter("rts.class_fetches"), fetches);
}

TEST(System, InstantiateAtRemoteFactory) {
  auto system = make_logic_system(2);
  const common::NodeId n1{1}, n2{2};
  auto& c1 = system->client(n1);
  c1.instantiate_at(n2, "Counter", "remoteCounter");
  EXPECT_TRUE(system->server(n2).registry().has_local("remoteCounter"));
  EXPECT_EQ(c1.find("remoteCounter"), n2);
  common::NodeId cloc = n2;
  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "remoteCounter", "increment"), 1);
}

TEST(System, InstantiateUnknownClassFails) {
  auto system = make_logic_system(2);
  auto& c1 = system->client(common::NodeId{1});
  EXPECT_THROW(c1.instantiate_at(common::NodeId{2}, "Mystery", "obj"),
               common::MageError);
}

TEST(System, TransferOutMovesDirectly) {
  auto system = make_logic_system(2);
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("counter", "Counter");
  dynamic_cast<Counter&>(c1.local_object("counter")).set(7);
  c1.transfer_out("counter", common::NodeId{2});
  EXPECT_FALSE(c1.has_local("counter"));
  common::NodeId cloc = common::NodeId{2};
  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "counter", "get"), 7);
}

TEST(System, TransferOutRequiresLocalObject) {
  auto system = make_logic_system(2);
  auto& c1 = system->client(common::NodeId{1});
  EXPECT_THROW(c1.transfer_out("ghost", common::NodeId{2}),
               common::NotFoundError);
}

TEST(System, OnewayInvocationParksResult) {
  auto system = make_logic_system(2);
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("counter", "Counter");
  c1.move("counter", common::NodeId{2});
  common::NodeId cloc = common::NodeId{2};
  c1.invoke_oneway(cloc, "counter", "add", std::int64_t{5});
  EXPECT_EQ(c1.fetch_result<std::int64_t>(cloc, "counter"), 5);
}

TEST(System, FetchResultConsumesTheParkedValue) {
  auto system = make_logic_system(2);
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("counter", "Counter");
  c1.move("counter", common::NodeId{2});
  common::NodeId cloc = common::NodeId{2};
  c1.invoke_oneway(cloc, "counter", "increment");
  (void)c1.fetch_result<std::int64_t>(cloc, "counter");
  EXPECT_THROW((void)c1.fetch_result<std::int64_t>(cloc, "counter"),
               common::RemoteInvocationError);
}

TEST(System, MethodExceptionPropagatesAcrossTheWire) {
  auto system = make_logic_system(2);
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("grumpy", "Grumpy");
  c1.move("grumpy", common::NodeId{2});
  common::NodeId cloc = common::NodeId{2};
  try {
    (void)c1.invoke<std::int64_t>(cloc, "grumpy", "refuse");
    FAIL() << "expected RemoteInvocationError";
  } catch (const common::RemoteInvocationError& e) {
    EXPECT_NE(std::string(e.what()).find("grumpy object refuses"),
              std::string::npos);
  }
}

TEST(System, UnknownMethodPropagatesError) {
  auto system = make_logic_system(2);
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("counter", "Counter");
  c1.move("counter", common::NodeId{2});
  common::NodeId cloc = common::NodeId{2};
  EXPECT_THROW((void)c1.invoke<std::int64_t>(cloc, "counter", "explode"),
               common::RemoteInvocationError);
}

TEST(System, MoveToSelfIsIdempotent) {
  auto system = make_logic_system(2);
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("counter", "Counter");
  EXPECT_EQ(c1.move("counter", common::NodeId{1}), common::NodeId{1});
  EXPECT_TRUE(c1.has_local("counter"));
}

TEST(System, GetLoadRemote) {
  auto system = make_logic_system(2);
  system->network().set_load(common::NodeId{2}, 73.5);
  auto& c1 = system->client(common::NodeId{1});
  EXPECT_DOUBLE_EQ(c1.load_of(common::NodeId{2}), 73.5);
  EXPECT_DOUBLE_EQ(c1.load_of(common::NodeId{1}), 0.0);
}

TEST(System, EngineWarmupChargedOncePerNode) {
  auto system = make_classic_system(2);
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("counter", "Counter");
  // The first move warms both engines: node 1 handles the (loopback) move
  // request, node 2 handles the transfer.
  c1.move("counter", common::NodeId{2});
  EXPECT_EQ(system->stats().counter("rts.engine_warmups"), 2);
  c1.move("counter", common::NodeId{1});
  c1.move("counter", common::NodeId{2});
  EXPECT_EQ(system->stats().counter("rts.engine_warmups"), 2);
}

TEST(System, NotebookSurvivesMigrationWithRichState) {
  auto system = make_logic_system(3);
  auto& c1 = system->client(common::NodeId{1});
  c1.create_component("notes", "Notebook");
  common::NodeId cloc = common::NodeId{1};
  c1.invoke<serial::Unit>(cloc, "notes", "set_title",
                          std::string("field notes"));
  for (int i = 0; i < 10; ++i) {
    c1.invoke<serial::Unit>(cloc, "notes", "append",
                            "entry " + std::to_string(i));
  }
  c1.move("notes", common::NodeId{3});
  cloc = common::NodeId{3};
  EXPECT_EQ(c1.invoke<std::string>(cloc, "notes", "title"), "field notes");
  EXPECT_EQ(c1.invoke<std::int64_t>(cloc, "notes", "size"), 10);
  EXPECT_EQ(c1.invoke<std::string>(cloc, "notes", "entry", std::int64_t{7}),
            "entry 7");
}

TEST(System, PingRoundTrip) {
  auto system = make_logic_system(2);
  EXPECT_NO_THROW(system->client(common::NodeId{1}).ping(common::NodeId{2}));
}

}  // namespace
}  // namespace mage::rts
